module C = Radio_config.Config
module G = Radio_graph.Graph
module Protocol = Radio_drip.Protocol
module Engine = Radio_sim.Engine
module Trace = Radio_sim.Trace
module Classifier = Election.Classifier
module Fast_classifier = Election.Fast_classifier
module Canonical = Election.Canonical
module Symmetry = Election.Symmetry
module Pool = Radio_exec.Pool
module Interner = Radio_exec.Intern

type budget =
  [ `Depth
  | `States
  ]

type stats = {
  states_explored : int;
  states_raw : int;
  peak_frontier : int;
  depth_reached : int;
  distinct_keys : int;
  automorphisms : int;
  canonicalizations : int;
  visited_bytes : int;
}

type violation =
  | Two_leaders of int list
  | No_leader_on_feasible
  | Leader_on_infeasible of { leader : int }
  | Wrong_leader of { elected : int; canonical : int }
  | Liveness_bound_exceeded of { bound : int; completed : int }

type verdict =
  | Elected of { leader : int; round : int }
  | Non_election of { classes : int list list }
  | Violated of violation
  | Exhausted of budget

type result = {
  config : C.t;
  machine_name : string;
  verdict : verdict;
  trace : Trace.t;
  rounds : int;
  stats : stats;
}

let normalize config =
  if C.is_normalized config then config
  else C.create (C.graph config) (C.tags config)

let global_bound ~n ~sigma = sigma + Canonical.upper_bound_rounds ~n ~sigma

let senders_of g tx v =
  G.fold_neighbours g v ~init:[] ~f:(fun acc w ->
      match tx.(w) with Some m -> m :: acc | None -> acc)

(* Protocol mode: the machine is deterministic, so the transition system is
   a single chain of interned state vectors; walking it is still a static
   exploration (per-key memoized [decide], no Protocol instances live
   across rounds), and the visited chain doubles as the concrete trace. *)
let check ?depth ?(states = 200_000) ~machine config =
  let config = normalize config in
  let g = C.graph config in
  let n = C.size config in
  if n = 0 then invalid_arg "Checker.check: empty configuration";
  let sigma = C.span config in
  let depth =
    match depth with Some d -> d | None -> global_bound ~n ~sigma + 1
  in
  let intern = State.Intern.create () in
  let decide_cache : (int, Protocol.action) Hashtbl.t = Hashtbl.create 256 in
  let decide k =
    match Hashtbl.find_opt decide_cache k with
    | Some a -> a
    | None ->
        let a = machine.Machine.decide (State.Intern.history intern k) in
        Hashtbl.replace decide_cache k a;
        a
  in
  let decision k = machine.Machine.decision (State.Intern.history intern k) in
  let state = ref (State.initial n) in
  let leaders = ref [] in
  let rev_trace = ref [] in
  let last_term_round = ref 0 in
  let rounds = ref 0 in
  let verdict = ref None in
  let r = ref 0 in
  while Option.is_none !verdict do
    if State.all_terminated !state then
      verdict :=
        Some
          (match !leaders with
          | [ l ] -> Elected { leader = l; round = !last_term_round }
          | [] -> Non_election { classes = State.classes !state }
          | ls -> Violated (Two_leaders (List.sort Int.compare ls)))
    else if !r >= depth then verdict := Some (Exhausted `Depth)
    else if State.Intern.size intern > states then
      verdict := Some (Exhausted `States)
    else begin
      let cur = !state in
      let next = Array.copy cur in
      let tx : string option array = Array.make n None in
      let transmitters = ref [] in
      let terminated = ref [] in
      let woken = ref [] in
      (* Phase A: decisions of running nodes (all woke before round r:
         Phase C below wakes into [next], never into [cur]). *)
      for v = n - 1 downto 0 do
        if cur.(v) > 0 then
          match decide cur.(v) with
          | Protocol.Terminate ->
              next.(v) <- -cur.(v);
              terminated := v :: !terminated;
              if decision cur.(v) then leaders := v :: !leaders
          | Protocol.Transmit m ->
              tx.(v) <- Some m;
              transmitters := (v, m) :: !transmitters
          | Protocol.Listen -> ()
      done;
      (* Phase B: receptions at nodes still running after Phase A. *)
      for v = 0 to n - 1 do
        if cur.(v) > 0 && next.(v) > 0 then begin
          let event =
            match tx.(v) with
            | Some _ -> State.E_silence (* transmitters hear nothing *)
            | None -> (
                match senders_of g tx v with
                | [] -> State.E_silence
                | [ m ] -> State.E_message m
                | _ -> State.E_collision)
          in
          next.(v) <- State.Intern.get intern cur.(v) event
        end
      done;
      (* Phase C: wake-ups of sleeping nodes. *)
      for v = n - 1 downto 0 do
        if cur.(v) = 0 then begin
          match senders_of g tx v with
          | [ m ] ->
              next.(v) <- State.Intern.get intern 0 (State.E_message m);
              woken := (v, Trace.Forced m) :: !woken
          | _ ->
              if C.tag config v = !r then begin
                next.(v) <- State.Intern.get intern 0 State.E_silence;
                woken := (v, Trace.Spontaneous) :: !woken
              end
        end
      done;
      (match !terminated with [] -> () | _ -> last_term_round := !r);
      (match (!transmitters, !woken, !terminated) with
      | [], [], [] -> () (* quiet round: omitted, as in Trace.Acc *)
      | _ ->
          rev_trace :=
            {
              Trace.round = !r;
              transmitters = !transmitters;
              woken = !woken;
              terminated = !terminated;
            }
            :: !rev_trace);
      (match !leaders with
      | _ :: _ :: _ ->
          verdict :=
            Some (Violated (Two_leaders (List.sort Int.compare !leaders)))
      | _ -> ());
      state := next;
      incr r;
      rounds := !r
    end
  done;
  let verdict =
    (* radiolint: allow assert-false — the loop only exits once the
       verdict reference is filled. *)
    match !verdict with Some v -> v | None -> assert false
  in
  {
    config;
    machine_name = machine.Machine.name;
    verdict;
    trace = List.rev !rev_trace;
    rounds = !rounds;
    stats =
      {
        states_explored = !rounds + 1;
        states_raw = !rounds + 1;
        peak_frontier = 1;
        depth_reached = !rounds;
        distinct_keys = State.Intern.size intern;
        automorphisms = 1;
        canonicalizations = 0;
        visited_bytes = 0;
      };
  }

let drip_family name =
  String.equal name "drip" || String.equal name "pure-drip"

let verify ?depth ?states ?machine config =
  let config = normalize config in
  let machine =
    match machine with Some m -> m | None -> Machine.drip config
  in
  let res = check ?depth ?states ~machine config in
  let run = Fast_classifier.classify config in
  let n = C.size config in
  let sigma = C.span config in
  let bound = global_bound ~n ~sigma in
  let verdict =
    match res.verdict with
    | Elected { leader; round } -> (
        match Classifier.canonical_leader run with
        | None -> Violated (Leader_on_infeasible { leader })
        | Some canonical
          when drip_family res.machine_name && canonical <> leader ->
            Violated (Wrong_leader { elected = leader; canonical })
        | Some _ when round > bound ->
            Violated (Liveness_bound_exceeded { bound; completed = round })
        | Some _ -> res.verdict)
    | Non_election _ ->
        if Classifier.is_feasible run then Violated No_leader_on_feasible
        else res.verdict
    | Violated _ | Exhausted _ -> res.verdict
  in
  { res with verdict }

type replay = {
  outcome : Engine.outcome;
  trace_matches : bool;
  report : Radio_lint.Report.t;
}

let equal_wake_kind k1 k2 =
  match (k1, k2) with
  | Trace.Spontaneous, Trace.Spontaneous -> true
  | Trace.Forced m1, Trace.Forced m2 -> String.equal m1 m2
  | Trace.Spontaneous, _ | Trace.Forced _, _ -> false

let equal_round_events (e1 : Trace.round_events) (e2 : Trace.round_events) =
  e1.Trace.round = e2.Trace.round
  && List.equal
       (fun (v1, m1) (v2, m2) -> v1 = v2 && String.equal m1 m2)
       e1.Trace.transmitters e2.Trace.transmitters
  && List.equal
       (fun (v1, k1) (v2, k2) -> v1 = v2 && equal_wake_kind k1 k2)
       e1.Trace.woken e2.Trace.woken
  && List.equal Int.equal e1.Trace.terminated e2.Trace.terminated

let trace_equal t1 t2 = List.equal equal_round_events t1 t2

let replay ?max_rounds ~machine res =
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None -> (match res.rounds with 0 -> 1 | r -> r)
  in
  let outcome =
    Engine.run ~max_rounds ~record_trace:true machine.Machine.protocol
      res.config
  in
  {
    outcome;
    trace_matches = trace_equal res.trace outcome.Engine.trace;
    report =
      Radio_lint.Invariants.validate ~protocol:machine.Machine.protocol
        outcome;
  }

(* Universal mode: explore every deterministic protocol at once, branching
   over the subsets of awake history classes that transmit (Optimal's
   model); messages carry the sender's class key, the strongest content an
   anonymous DRIP can convey.  There is no termination action here — the
   mode answers reachability questions (when can some node's history
   separate?) and carries the symmetry-reduction machinery. *)
type exploration = {
  config : C.t;
  separated_at : int option;
  exhausted : budget option;
  stats : stats;
}

let distinct_awake_keys (s : State.t) =
  List.sort_uniq Int.compare
    (List.filter (fun k -> k > 0) (Array.to_list s))

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun t -> x :: t) s

let separated (s : State.t) =
  let n = Array.length s in
  let unique v =
    s.(v) > 0
    &&
    let rec inner w =
      w >= n || ((w = v || abs s.(w) <> s.(v)) && inner (w + 1))
    in
    inner 0
  in
  let rec outer v = v < n && (unique v || outer (v + 1)) in
  outer 0

(* Int-coded receive events for the universal explorer.  The boxed
   {!State.event} carries its message as a string — an allocation per
   reception.  Universal-mode messages are always the sender's class key,
   so an int payload suffices; the constructor map to
   [E_silence]/[E_message]/[E_collision] is a bijection, so the interned
   key space (and with it every state count) is unchanged. *)
type uevent =
  | Uev_silence
  | Uev_msg of int
  | Uev_noise

(* A successor as generated on a worker.  Slot ids come straight from the
   interner view — non-negative global ids or negative provisional ones —
   so the terminated/crashed sign convention of {!State.t} cannot be
   applied yet: a provisional id's own sign would be ambiguous.  The sign
   bit travels out-of-band in the [udead] mask and is applied at commit,
   after ids resolve. *)
type usucc = {
  uslots : int array;  (* unsigned interner ids; 0 = asleep *)
  udead : int;  (* bitmask: node terminated or crashed *)
  uspent : int;  (* crash budget spent *)
}

(* Frontier waves: each BFS level is expanded in slices of this many
   entries — generate the whole slice (in parallel when a pool is given),
   then commit it in submission order.  The size is a constant, never
   derived from the worker count, so wave boundaries — and with them
   interning order, cap trips and every stat — are identical at every
   [--jobs] level.  Sized so one wave's generated successors stay within
   the workers' minor heaps: a generated wave is held alive until its
   commit, so an over-sized wave would promote every successor record to
   the major heap and hand the parallel path a GC bill the sequential
   path never pays. *)
let wave_entries = 2_048

let explore ?(depth = 24) ?(states = 2_000_000) ?(reduction = true)
    ?(faults = 0) ?pool ?progress config =
  let config = normalize config in
  let g = C.graph config in
  let n = C.size config in
  if n = 0 then invalid_arg "Checker.explore: empty configuration";
  if n > 62 then invalid_arg "Checker.explore: crash mask supports n <= 62";
  let autos = if reduction then Symmetry.automorphisms config else [] in
  let max_tag = Array.fold_left (fun a t -> if t > a then t else a) 0 (C.tags config) in
  (* Spontaneous wake-ups are spent after [max_tag]: beyond it the
     transition relation is round-invariant and states may be merged
     across rounds. *)
  let round_class r = if r > max_tag then max_tag + 1 else r in
  let intern : (int * uevent) Interner.t = Interner.create ~first:1 () in
  let visited = Visited.create ~slots:n () in
  let raw = ref 0 in
  let canonicalizations = ref 0 in
  let peak = ref 0 in
  let depth_seen = ref 0 in
  let separated_at = ref None in
  let exhausted = ref None in
  (* All successors of one frontier entry, in deterministic order: per
     transmitting subset the base successor, then (with crash budget
     left) one crash variant per awake node, ascending.  [geti] is the
     interner — the global table on the sequential path, a task-local
     view on workers.  Crash variants share the base slot array: they
     differ only in the mask, and slots are never mutated after
     generation. *)
  let expand_entry geti round (cur : State.t) spent =
    let acc = ref [] in
    List.iter
      (fun transmitting ->
        let tx =
          Array.init n (fun v ->
              if cur.(v) > 0 && List.mem cur.(v) transmitting then
                Some cur.(v)
              else None)
        in
        let slots = Array.make n 0 in
        let dead = ref 0 in
        for v = 0 to n - 1 do
          let k = cur.(v) in
          if k > 0 then begin
            let event =
              match tx.(v) with
              | Some _ -> Uev_silence (* transmitters hear nothing *)
              | None -> (
                  match senders_of g tx v with
                  | [] -> Uev_silence
                  | [ m ] -> Uev_msg m
                  | _ -> Uev_noise)
            in
            slots.(v) <- geti (k, event)
          end
          else if k < 0 then begin
            slots.(v) <- -k;
            (* crashed: frozen *)
            (* radiolint: allow range-overflow -- v < n and explore
               rejects n > 62 up front, so the bit fits *)
            dead := !dead lor (1 lsl v)
          end
          else
            match senders_of g tx v with
            | [ m ] -> slots.(v) <- geti (0, Uev_msg m)
            | _ ->
                if C.tag config v = round then
                  slots.(v) <- geti (0, Uev_silence)
        done;
        acc := { uslots = slots; udead = !dead; uspent = spent } :: !acc;
        (* Crash adversary: after the round's exchanges, any single awake
           node may die (key frozen, negated).  Crashing automorphic
           twins yields automorphic sibling states — the case the
           symmetry quotient collapses. *)
        if spent < faults then
          for v = 0 to n - 1 do
            (* radiolint: allow range-overflow -- v < n <= 62 (guarded at
               the top of explore), so the crash-mask bit fits *)
            if slots.(v) <> 0 && !dead land (1 lsl v) = 0 then
              acc :=
                {
                  uslots = slots;
                  (* radiolint: allow range-overflow -- same v < n <= 62
                     bound as the test above *)
                  udead = !dead lor (1 lsl v);
                  uspent = spent + 1;
                }
                :: !acc
          done)
      (subsets (distinct_awake_keys cur));
    Array.of_list (List.rev !acc)
  in
  let next = ref [] in
  (* Frontier entries carry the crash budget already spent: two states
     that agree node-wise but differ in remaining faults have different
     futures.  One canonicalization and one visited-set probe per
     successor: [Visited.add] packs, probes and inserts in a single pass
     (the old path canonicalized, built an encoding string, then probed
     twice — mem, then replace). *)
  let visit ~round ~spent s =
    if Visited.size visited >= states then
      (* Enforced per insertion, not per BFS level: one wide level could
         otherwise overshoot the budget by orders of magnitude. *)
      exhausted := Some `States
    else begin
      let canon = State.canonicalize autos s in
      incr canonicalizations;
      if Visited.add visited ~round_class:(round_class round) ~spent canon
      then next := (canon, spent) :: !next
    end
  in
  (* Commit one entry's generated successors on the orchestrating domain:
     resolve slot ids, apply the sign mask, then run the exact sequential
     bookkeeping — raw count, separation check at the current round,
     visited insertion at the next. *)
  let commit_entry resolve round succs =
    if Visited.size visited >= states then exhausted := Some `States
    else
      Array.iter
        (fun { uslots; udead; uspent } ->
          let s = Array.make n 0 in
          for v = 0 to n - 1 do
            let id = resolve uslots.(v) in
            (* radiolint: allow range-overflow -- v < n <= 62, the
               explore-entry crash-mask bound *)
            s.(v) <- (if udead land (1 lsl v) <> 0 then -id else id)
          done;
          incr raw;
          if separated s && Option.is_none !separated_at then
            separated_at := Some round;
          visit ~round:(round + 1) ~spent:uspent s)
        succs
  in
  let seq_wave round entries =
    Array.iter
      (fun (cur, spent) ->
        commit_entry
          (fun id -> id)
          round
          (expand_entry (Interner.get intern) round cur spent))
      entries
  in
  (* Parallel generation: one contiguous chunk per worker, one interner
     view per chunk.  Keys are [(parent, event)] pairs over the frontier's
     final ids, so no provisional id is ever embedded in a key and the
     commit remap is the identity — only successor slots need resolving.
     Chunk logs replay in submission order, so ids (and everything
     downstream of them) are bit-identical to the sequential path. *)
  let par_wave p round entries =
    let chunks =
      Pool.map_chunked p
        ~f:(fun part ->
          let view = Interner.local intern in
          let geti k = Interner.get_local view k in
          ( view,
            Array.map (fun (cur, spent) -> expand_entry geti round cur spent)
              part ))
        entries
    in
    Array.iter
      (fun (view, per_entry) ->
        let resolve = Interner.commit intern ~remap:(fun _ k -> k) view in
        Array.iter (fun succs -> commit_entry resolve round succs) per_entry)
      chunks
  in
  let report round flen =
    match progress with
    | None -> ()
    | Some f ->
        f ~round ~frontier:flen ~explored:(Visited.size visited)
          ~bytes:(Visited.memory_bytes visited)
  in
  let rec level round frontier =
    let flen = Array.length frontier in
    if flen = 0 then ()
    else if round >= depth then exhausted := Some `Depth
    else begin
      depth_seen := round;
      if flen > !peak then peak := flen;
      next := [];
      let pos = ref 0 in
      while !pos < flen do
        if Visited.size visited >= states then begin
          (* Every remaining entry would be skipped by the per-entry cap
             check; record the trip without generating their
             successors. *)
          exhausted := Some `States;
          pos := flen
        end
        else begin
          let wlen = Int.min wave_entries (flen - !pos) in
          let entries = Array.sub frontier !pos wlen in
          (match pool with
          | Some p when Pool.jobs p > 1 && wlen >= Pool.min_parallel_batch ->
              par_wave p round entries
          | _ -> seq_wave round entries);
          pos := !pos + wlen;
          report round flen
        end
      done;
      let nf = Array.of_list (List.rev !next) in
      next := [];
      level (round + 1) nf
    end
  in
  next := [];
  visit ~round:0 ~spent:0 (State.initial n);
  let f0 = Array.of_list (List.rev !next) in
  next := [];
  level 0 f0;
  {
    config;
    separated_at = !separated_at;
    exhausted = !exhausted;
    stats =
      {
        states_explored = Visited.size visited;
        states_raw = !raw;
        peak_frontier = !peak;
        depth_reached = !depth_seen;
        distinct_keys = Interner.size intern;
        automorphisms = (match autos with [] -> 1 | l -> List.length l);
        canonicalizations = !canonicalizations;
        visited_bytes = Visited.memory_bytes visited;
      };
  }

let pp_violation ppf = function
  | Two_leaders vs ->
      Format.fprintf ppf "two leaders elected: nodes %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        vs
  | No_leader_on_feasible ->
      Format.pp_print_string ppf
        "no leader elected on a classifier-feasible configuration"
  | Leader_on_infeasible { leader } ->
      Format.fprintf ppf
        "node %d elected on a classifier-infeasible configuration" leader
  | Wrong_leader { elected; canonical } ->
      Format.fprintf ppf "node %d elected but the canonical leader is %d"
        elected canonical
  | Liveness_bound_exceeded { bound; completed } ->
      Format.fprintf ppf
        "election completed in round %d, past the O(n^2 sigma) bound %d"
        completed bound

let violation_id = function
  | Two_leaders _ -> "mc-two-leaders"
  | No_leader_on_feasible -> "mc-no-leader"
  | Leader_on_infeasible _ -> "mc-leader-on-infeasible"
  | Wrong_leader _ -> "mc-wrong-leader"
  | Liveness_bound_exceeded _ -> "mc-liveness-bound"

let pp_verdict ppf = function
  | Elected { leader; round } ->
      Format.fprintf ppf "elected node %d in round %d" leader round
  | Non_election { classes } ->
      Format.fprintf ppf
        "non-election: terminal symmetric state with classes %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf cls ->
             Format.fprintf ppf "{%a}"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
                  Format.pp_print_int)
               cls))
        classes
  | Violated v -> Format.fprintf ppf "VIOLATION: %a" pp_violation v
  | Exhausted `Depth -> Format.pp_print_string ppf "depth budget exhausted"
  | Exhausted `States -> Format.pp_print_string ppf "state budget exhausted"
