(** Bounded model checking of the election transition system.

    Two exploration modes share the interned state encoding of {!State}:

    {b Protocol mode} ({!check} / {!verify}) fixes a deterministic
    {!Machine.t}; the transition system is then a single chain of state
    vectors, walked without instantiating the protocol (the machine's pure
    [decide] is memoized per interned history key) and doubling as a
    concrete {!Radio_sim.Trace.t} — the counterexample format, replayable
    through {!Radio_sim.Engine} ({!replay}, [anorad check-trace]).
    {!verify} judges the terminal state against the classifier: a feasible
    configuration must elect exactly the canonical leader within the
    paper's [O(n^2 σ)] bound, an infeasible one must reach a terminal
    symmetric state in which no history class is decided.

    {b Universal mode} ({!explore}) fixes no machine: it branches over
    every subset of awake history classes transmitting (the model of
    {!Election.Optimal}), over-approximating all deterministic anonymous
    protocols at once, with messages carrying the sender's class key.
    Frontier BFS with a hash-consed visited set, quotiented by the
    tag-preserving automorphism group ({!Election.Symmetry.automorphisms})
    when [reduction] is on.  States are merged across rounds only beyond
    the last wake-up tag, where the transition relation becomes
    round-invariant. *)

type budget =
  [ `Depth
  | `States
  ]

type stats = {
  states_explored : int;  (** canonical states inserted into the visited set *)
  states_raw : int;  (** successor states generated before dedup *)
  peak_frontier : int;
  depth_reached : int;  (** last round expanded *)
  distinct_keys : int;  (** interned history keys *)
  automorphisms : int;  (** group size used for the quotient (1 = none) *)
  canonicalizations : int;
      (** [State.canonicalize] calls — exactly [states_raw + 1] (one per
          raw successor plus the initial state) on runs that do not trip
          the state cap: the single-probe visited set never canonicalizes
          a state twice (protocol mode: 0) *)
  visited_bytes : int;
      (** visited-set footprint, offset table plus packed-code arena; the
          structure only grows, so the final value is the peak
          (protocol mode: 0) *)
}

type violation =
  | Two_leaders of int list  (** safety: more than one decided node *)
  | No_leader_on_feasible
  | Leader_on_infeasible of { leader : int }
  | Wrong_leader of { elected : int; canonical : int }
  | Liveness_bound_exceeded of { bound : int; completed : int }
      (** elected, but past [σ + upper_bound_rounds] global rounds *)

type verdict =
  | Elected of { leader : int; round : int }
      (** unique leader; [round] is the global completion round *)
  | Non_election of { classes : int list list }
      (** terminal state, every node terminated, no node decided; [classes]
          is the partition of nodes by final history — on infeasible
          configurations every class has [>= 2] members (the reachable
          symmetric state witnessing non-election) *)
  | Violated of violation
  | Exhausted of budget

type result = {
  config : Radio_config.Config.t;  (** normalized *)
  machine_name : string;
  verdict : verdict;
  trace : Radio_sim.Trace.t;
  rounds : int;  (** rounds simulated (= trace horizon) *)
  stats : stats;
}

val check :
  ?depth:int ->
  ?states:int ->
  machine:Machine.t ->
  Radio_config.Config.t ->
  result
(** Protocol-mode exploration, judging only machine-independent properties:
    {!Elected} / {!Non_election} at the terminal state, [Violated
    (Two_leaders _)] the moment a second node decides, {!Exhausted} when a
    budget trips.  [depth] defaults to [σ + upper_bound_rounds + 1] global
    rounds; [states] (default [200_000]) caps interned keys.  Raises
    [Invalid_argument] on the empty configuration. *)

val verify :
  ?depth:int ->
  ?states:int ->
  ?machine:Machine.t ->
  Radio_config.Config.t ->
  result
(** {!check} plus the classifier cross-judgement described above.  The
    canonical-leader equality is enforced for the drip machines only
    (dedicated machines like min-beacon legitimately elect a different
    node); [machine] defaults to {!Machine.drip}. *)

val global_bound : n:int -> sigma:int -> int
(** [σ + Canonical.upper_bound_rounds ~n ~sigma]: every node of a feasible
    configuration terminates by this global round under the canonical
    DRIP. *)

type replay = {
  outcome : Radio_sim.Engine.outcome;
  trace_matches : bool;
      (** the engine trace equals the checker trace bit-for-bit *)
  report : Radio_lint.Report.t;
      (** full {!Radio_lint.Invariants.validate} of the replay *)
}

val replay : ?max_rounds:int -> machine:Machine.t -> result -> replay
(** Replays the machine concretely through {!Radio_sim.Engine} on the
    result's configuration ([max_rounds] defaults to the rounds the checker
    simulated) and validates the outcome. *)

val trace_equal : Radio_sim.Trace.t -> Radio_sim.Trace.t -> bool
(** Structural equality of traces (explicit, no polymorphic compare). *)

type exploration = {
  config : Radio_config.Config.t;
  separated_at : int option;
      (** first round some reachable state holds a running node with a
          unique history — the precondition for any election ([None] on
          infeasible configurations, Lemma 3.16) *)
  exhausted : budget option;  (** [None]: the frontier emptied *)
  stats : stats;
}

val explore :
  ?depth:int ->
  ?states:int ->
  ?reduction:bool ->
  ?faults:int ->
  ?pool:Radio_exec.Pool.t ->
  ?progress:(round:int -> frontier:int -> explored:int -> bytes:int -> unit) ->
  Radio_config.Config.t ->
  exploration
(** Universal-mode frontier BFS ([depth] default [24], [states] default
    [2_000_000], [reduction] default on, [faults] default [0]).

    States live bit-packed ({!State.Packed}) in an open-addressing
    {!Visited} set — the GC never traces them — so the default cap is
    millions, not the old [200_000].  Passing [pool] parallelizes frontier
    expansion: each level is cut into constant-size waves, a wave is
    generated across the pool's workers (one {!Radio_exec.Intern} view per
    chunk) and committed in submission order, so [separated_at],
    [exhausted] and every [stats] field are bit-identical at every job
    count — including [jobs = 1] and no pool at all.  [progress] is
    called on the orchestrating domain after each committed wave.

    With [faults = 0] the quotient is provably the identity: nodes with
    equal histories act in lockstep, so every reachable state is invariant
    under every tag-preserving automorphism — the model checker's
    restatement of the paper's symmetry impossibility (tests assert the
    visited set is {e unchanged} by [reduction]).  Setting [faults = k]
    arms a crash adversary that may kill up to [k] awake nodes (one per
    round, after the round's exchanges; the victim's key is frozen and
    negated, as a terminated node's would be).  Crashes name concrete
    nodes, so they break lockstep: killing a node or its automorphic twin
    yields distinct automorphic sibling states, and the quotient collapses
    them — there the reduction demonstrably shrinks the visited set. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_id : violation -> string
(** Stable SARIF rule id ([mc-two-leaders], [mc-no-leader], ...). *)

val pp_verdict : Format.formatter -> verdict -> unit
