module Protocol = Radio_drip.Protocol
module Classifier = Election.Classifier
module Canonical = Election.Canonical

let plan_of config = Canonical.plan_of_run (Classifier.classify config)

let greedy_decision config =
  let plan = plan_of config in
  {
    Machine.name = "mutant-greedy-decision";
    protocol = Canonical.protocol plan;
    decide = Canonical.pure_drip plan;
    decision = (fun h -> Option.is_some (Canonical.final_class plan h));
  }

let early_stop config =
  let plan = plan_of config in
  let stop =
    match Canonical.local_termination_round plan - 1 with
    | s when s < 1 -> 1
    | s -> s
  in
  let decide h =
    if Array.length h >= stop then Protocol.Terminate
    else Canonical.pure_drip plan h
  in
  {
    Machine.name = "mutant-early-stop";
    protocol = Protocol.of_pure ~name:"mutant-early-stop" decide;
    decide;
    decision =
      (fun h ->
        (* Truncated histories fall off the plan's schedule. *)
        try Canonical.decision plan h with Invalid_argument _ -> false);
  }

let of_name config = function
  | "mutant-greedy-decision" -> Some (greedy_decision config)
  | "mutant-early-stop" -> Some (early_stop config)
  | _ -> None

let names = [ "mutant-greedy-decision"; "mutant-early-stop" ]
