(* Compact visited set for the universal-mode explorer.

   The old representation — a [(string, unit) Hashtbl.t] keyed by the
   decimal encoding of each canonical state — allocates a fresh string
   plus a bucket cell per insertion and probes twice per fresh state
   (mem, then replace).  At millions of states that is hundreds of MB of
   boxed garbage and a GC-bound hot path.

   Here a state's packed code (State.Packed varints) is written once into
   a growable byte arena, and membership is a single open-addressing
   probe over an int-key table of arena offsets:

       table : int array     -- power-of-two capacity, linear probing;
                                slot 0 is "empty", else offset + 1
       arena : Bytes.t       -- [len:2 bytes LE][code bytes] per entry,
                                appended in insertion order

   [add] packs the candidate straight into the arena tail, probes once,
   and either publishes the entry (fresh: record the offset, keep the
   bytes) or rolls the arena back (duplicate: no allocation happened at
   all).  Growth doubles in place: the table rebuilds by walking the
   arena sequentially — entries are distinct by construction, so each
   re-probe stops at the first empty slot — and the arena reallocates
   and blits.  Both structures are unboxed, so the GC never traces the
   visited set no matter how large it grows. *)

type t = {
  mutable table : int array;  (* offset + 1; 0 = empty *)
  mutable mask : int;  (* capacity - 1, capacity a power of two *)
  mutable count : int;
  mutable arena : Bytes.t;
  mutable len : int;  (* arena bytes in use *)
  max_code : int;  (* State.Packed.max_bytes for this state width *)
}

let entry_header = 2 (* little-endian code length *)

let create ?(bits = 12) ~slots () =
  let bits = if bits < 3 then 3 else if bits > 48 then 48 else bits in
  let capacity = 1 lsl bits in
  let max_code = State.Packed.max_bytes ~n:slots in
  (* The entry header stores the code length in two little-endian bytes;
     reject state widths whose worst-case code could not round-trip
     through it (cold path: once per explorer run). *)
  if max_code > 0xffff then
    invalid_arg "Visited.create: state width overflows the 2-byte entry header";
  {
    table = Array.make capacity 0;
    mask = capacity - 1;
    count = 0;
    arena = Bytes.create 4096;
    len = 0;
    max_code;
  }

let size t = t.count

let memory_bytes t =
  (8 * Array.length t.table) + Bytes.length t.arena

(* FNV-1a over the code bytes, folded to a non-negative int (the 64-bit
   offset basis masked into OCaml's 63-bit int range). *)
let hash_range buf pos len =
  let h = ref 0x3bf29ce484222325 in
  for i = pos to pos + len - 1 do
    (* radiolint: allow range-index range-overflow -- i spans the entry
       the caller just wrote inside the arena, and the FNV prime multiply
       wraps by design *)
    h := (!h lxor Char.code (Bytes.unsafe_get buf i)) * 0x100000001b3
  done;
  !h land max_int

let code_len t off =
  (* radiolint: allow range-index -- off is a published entry offset, so
     entry_header + code bytes lie within the arena *)
  let b0 = Char.code (Bytes.unsafe_get t.arena off) in
  (* radiolint: allow range-index -- second header byte of the same entry *)
  let b1 = Char.code (Bytes.unsafe_get t.arena (off + 1)) in
  b0 lor (b1 lsl 8)

let equal_range buf apos bpos len =
  let rec go i =
    i = len
    (* radiolint: allow range-index -- i < len and both ranges were sized
       by their writers inside the arena *)
    || Bytes.unsafe_get buf (apos + i) = Bytes.unsafe_get buf (bpos + i)
       && go (i + 1)
  in
  go 0

(* Insert a known-fresh entry offset during a rebuild: entries are
   pairwise distinct, so the first empty slot is the answer. *)
let place table mask off hash =
  let i = ref (hash land mask) in
  while table.(!i) <> 0 do
    i := (!i + 1) land mask
  done;
  table.(!i) <- off + 1

let grow_table t =
  (* radiolint: allow range-overflow -- table doubling; capacity is at
     most twice the entry count, far below an int *)
  let capacity = 2 * (t.mask + 1) in
  let table = Array.make capacity 0 in
  let mask = capacity - 1 in
  let off = ref 0 in
  while !off < t.len do
    let len = code_len t !off in
    place table mask !off (hash_range t.arena (!off + entry_header) len);
    off := !off + entry_header + len
  done;
  t.table <- table;
  t.mask <- mask

let ensure_arena t need =
  if t.len + need > Bytes.length t.arena then begin
    let cap = ref (2 * Bytes.length t.arena) in
    while t.len + need > !cap do
      (* radiolint: allow range-overflow -- arena doubling, bounded by
         allocatable memory *)
      cap := 2 * !cap
    done;
    let arena = Bytes.create !cap in
    Bytes.blit t.arena 0 arena 0 t.len;
    t.arena <- arena
  end

let add t ~round_class ~spent s =
  ensure_arena t (entry_header + t.max_code);
  let start = t.len + entry_header in
  let stop = State.Packed.write t.arena ~pos:start ~round_class ~spent s in
  let len = stop - start in
  let hash = hash_range t.arena start len in
  let i = ref (hash land t.mask) in
  let fresh = ref true in
  let probing = ref true in
  while !probing do
    match t.table.(!i) with
    | 0 -> probing := false
    | entry ->
        let off = entry - 1 in
        if
          code_len t off = len
          && equal_range t.arena (off + entry_header) start len
        then begin
          fresh := false;
          probing := false
        end
        else i := (!i + 1) land t.mask
  done;
  if not !fresh then false (* duplicate: arena rolls back *)
  else begin
    (* radiolint: allow range-index -- ensure_arena reserved
       entry_header + max_code bytes past len *)
    Bytes.unsafe_set t.arena t.len (Char.unsafe_chr (len land 0xff));
    (* radiolint: allow range-index range-truncation -- create rejects
       widths whose max_bytes exceed 0xffff, so the high byte fits *)
    Bytes.unsafe_set t.arena (t.len + 1) (Char.unsafe_chr (len lsr 8));
    t.table.(!i) <- t.len + 1;
    t.len <- stop;
    t.count <- t.count + 1;
    (* Load factor 1/2: one resident entry per two slots keeps linear
       probing short without doubling memory over the arena itself. *)
    if 2 * t.count >= t.mask + 1 then grow_table t;
    true
  end

let mem t ~round_class ~spent s =
  (* Probe without publishing: pack into the scratch space past [len]
     (the arena always keeps one max-size entry of headroom). *)
  ensure_arena t (entry_header + t.max_code);
  let start = t.len + entry_header in
  let stop = State.Packed.write t.arena ~pos:start ~round_class ~spent s in
  let len = stop - start in
  let hash = hash_range t.arena start len in
  let rec probe i =
    match t.table.(i) with
    | 0 -> false
    | entry ->
        let off = entry - 1 in
        code_len t off = len
        && equal_range t.arena (off + entry_header) start len
        || probe ((i + 1) land t.mask)
  in
  probe (hash land t.mask)

let iter t ~slots ~f =
  let off = ref 0 in
  while !off < t.len do
    let len = code_len t !off in
    let code = Bytes.sub t.arena (!off + entry_header) len in
    let round_class, spent, s = State.Packed.unpack ~n:slots code in
    f ~round_class ~spent s;
    off := !off + entry_header + len
  done
