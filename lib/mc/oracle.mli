(** The differential feasibility oracle.

    For every connected configuration up to an isomorphism-free graph
    enumeration ({!Radio_graph.Enumerate.connected_up_to_iso}) crossed with
    every normalized tag assignment of bounded span
    ({!Election.Census.tag_assignments}), the model-checker verdict under
    the canonical DRIP must agree with the classifier:

    - feasible ⇒ {!Checker.Elected} with the canonical leader, within the
      [O(n^2 σ)] bound (both enforced by {!Checker.verify});
    - infeasible ⇒ {!Checker.Non_election} at a terminal symmetric state in
      which {e every} final-history class has at least two members.

    With [replay] on, each run's trace is additionally replayed through the
    concrete {!Radio_sim.Engine} and must match bit-for-bit and pass
    {!Radio_lint.Invariants.validate}. *)

type disagreement = {
  config : Radio_config.Config.t;
  classifier_feasible : bool;
  verdict : Checker.verdict;
  detail : string;
}

type report = {
  configurations : int;
  feasible : int;
  infeasible : int;
  replayed : int;
  max_completion_round : int;
      (** largest global completion round seen on feasible configurations *)
  disagreements : disagreement list;
}

val run :
  ?pool:Radio_exec.Pool.t ->
  ?progress:(int -> int -> unit) ->
  ?max_n:int ->
  ?max_span:int ->
  ?replay:bool ->
  unit ->
  report
(** Defaults: [max_n = 5], [max_span = 2], [replay = false].

    [pool] checks configurations in parallel; the report is byte-identical
    to the sequential run at every jobs level (docs/PARALLEL.md).
    [progress done total] is invoked on the calling domain after each
    configuration's verdict is folded in, in submission order. *)

val consistent : report -> bool
(** No disagreements. *)

val pp_report : Format.formatter -> report -> unit
val pp_disagreement : Format.formatter -> disagreement -> unit
