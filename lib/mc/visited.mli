(** Compact visited set over bit-packed state codes.

    An open-addressing hash table whose keys are plain [int] offsets into
    a growable byte arena of {!State.Packed} codes: linear probing,
    power-of-two capacity, in-place doubling, load factor 1/2.  Both the
    table and the arena are unboxed, so the structure is invisible to the
    GC regardless of how many states it holds — the property that lets
    the explorer's state cap rise from 10^5 to 10^7 (docs/MODELCHECK.md).

    [add] is a single find-or-insert probe: the candidate code is written
    once into the arena tail and either published (fresh) or rolled back
    (duplicate), so membership testing allocates nothing. *)

type t

val create : ?bits:int -> slots:int -> unit -> t
(** [create ~slots ()] is an empty set for states of [slots] nodes;
    [bits] sizes the initial table at [2^bits] slots (default 12). *)

val add : t -> round_class:int -> spent:int -> State.t -> bool
(** [add t ~round_class ~spent s] inserts the packed code of [s] and
    returns [true], or returns [false] if it was already present. *)

val mem : t -> round_class:int -> spent:int -> State.t -> bool
(** Membership without insertion. *)

val size : t -> int
(** Number of states held. *)

val memory_bytes : t -> int
(** Current footprint of the table plus the arena, in bytes — monotone,
    so the final value is also the peak. *)

val iter :
  t ->
  slots:int ->
  f:(round_class:int -> spent:int -> State.t -> unit) ->
  unit
(** Visit every entry in insertion order (test / debugging aid; unpacks
    each code). *)
