(** Interned state vectors of the election transition system.

    The model checker never materializes per-node history arrays while
    exploring: a node's state is a single [int],

    - [0] — asleep (the shared empty history [⊥]);
    - [+k] — awake and running, with interned history key [k];
    - [-k] — terminated, with final history key [k];

    and a configuration state is one such int per node.  History keys are
    hash-consed in an {!Intern} table: every key [> 0] denotes
    [(parent key, this round's event)], with parent [0] marking the wake-up
    entry (never {!E_collision} — a forced wake-up carries the lone
    neighbour's message, a spontaneous one hears silence; engine.mli §2.1).

    Keys are {e content-pure}: they encode history contents only, never node
    identities, so permuting a state vector by a tag-preserving graph
    automorphism yields a state of the {e same} transition system with
    identical future behaviour.  That is what makes the {!canonicalize}
    quotient sound. *)

type event =
  | E_silence
  | E_message of string
  | E_collision

val equal_event : event -> event -> bool

val entry_of_event : event -> Radio_drip.History.entry
(** The concrete history entry an event denotes. *)

val pp_event : Format.formatter -> event -> unit

(** Hash-consed history keys. *)
module Intern : sig
  type key = int

  type t

  val create : unit -> t

  val get : t -> int -> event -> key
  (** [get t parent event] interns the history [history parent @ [event]];
      parent [0] is the empty history. Returns the same key for the same
      pair, a fresh positive key otherwise. *)

  val size : t -> int
  (** Number of distinct keys interned so far. *)

  val parent : t -> key -> int
  val event : t -> key -> event

  val depth : t -> key -> int
  (** Length of the denoted history. *)

  val history : t -> key -> Radio_drip.History.t
  (** Materializes the concrete history; entry [0] is the wake-up entry. *)
end

type t = int array
(** One slot per node: [0] asleep, [+k] awake, [-k] terminated. *)

val initial : int -> t
(** All nodes asleep. *)

val compare : t -> t -> int
(** Total lexicographic order (explicit — no polymorphic compare). *)

val equal : t -> t -> bool
val is_asleep : t -> int -> bool
val is_awake : t -> int -> bool
val is_terminated : t -> int -> bool

val all_terminated : t -> bool
(** Every node terminated: the run is over. *)

val none_awake : t -> bool
(** No running node (all asleep or terminated). *)

val key : t -> int -> int
(** [key s v]: the history key of node [v], sign stripped ([0] if asleep). *)

val encode : round_class:int -> t -> string
(** Deterministic string encoding for the hash-consed visited set.  The
    [round_class] must capture the round-dependence of the transition
    relation: two states with the same encoding are only merged when their
    futures coincide (checker.ml caps the class at [max tag + 1], after
    which spontaneous wake-ups are spent and the relation is
    round-invariant). *)

val permute : int array -> t -> t
(** [permute phi s]: the state in which node [phi.(v)] carries [s.(v)]. *)

val canonicalize : int array list -> t -> t
(** Lexicographically smallest node-permuted variant over a set of
    tag-preserving automorphisms ({!Symmetry.automorphisms}).  Keys need no
    renaming because they are content-pure. *)

(** Bit-packed state codes: the compact key format of the explorer's
    visited set ({!Visited}).  A code is a run of LEB128 varints — round
    class, crash budget spent, then one zigzag-mapped varint per slot — so
    two states pack to equal codes exactly when [round_class], [spent] and
    every slot agree, the same separation the legacy {!encode} string
    drew.  [write] emits straight into a caller-supplied buffer, making
    the visited set's hot path allocation-free. *)
module Packed : sig
  val max_bytes : n:int -> int
  (** Upper bound on the code length of any [n]-slot state. *)

  val write : Bytes.t -> pos:int -> round_class:int -> spent:int -> t -> int
  (** [write buf ~pos ~round_class ~spent s] writes the code at [pos] and
      returns the end position.  The buffer must have at least
      [max_bytes ~n] bytes of room after [pos]. *)

  val pack : round_class:int -> spent:int -> t -> Bytes.t
  (** Fresh exactly-sized code (the allocating convenience form). *)

  val unpack : n:int -> Bytes.t -> int * int * t
  (** [(round_class, spent, state)] back out of a code produced for an
      [n]-slot state: the roundtrip inverse of {!pack}. *)

  val zigzag : int -> int
  val unzigzag : int -> int
  (** The slot mapping ([0, -1, 1, -2, ...] to [0, 1, 2, 3, ...]): signed
      slots (terminated nodes are negative) to small unsigned varints. *)
end

val classes : t -> int list list
(** Partition of nodes by equal slot value (asleep nodes together, awake or
    terminated nodes by history key), classes ordered by smallest member,
    members ascending. *)

val pp : Format.formatter -> t -> unit
