(** Pluggable per-node machines for the model checker.

    A machine is one protocol seen twice: as a pure transition function
    [decide : history -> action] — the paper's literal DRIP form, which the
    checker memoizes per interned history key — and as an executable
    {!Radio_drip.Protocol.t} used to replay extracted counterexample traces
    through the concrete {!Radio_sim.Engine}.  The [decision] predicate
    says whether a final history makes its node a leader (Section 2.3).

    The two views must agree; {!of_protocol} guarantees it by construction
    (fresh-spawn replay of the engine's exact decide/observe interleaving),
    and the canonical-DRIP entries rely on the tested equivalence of
    {!Canonical.protocol} and {!Canonical.pure_drip}.

    Only deterministic anonymous machines can be registered: the randomized
    baselines (shared RNG) and the labeled one (spawn-order identities)
    fall outside the transition system and are intentionally excluded. *)

type t = {
  name : string;
  protocol : Radio_drip.Protocol.t;  (** for concrete Engine replay *)
  decide : Radio_drip.History.t -> Radio_drip.Protocol.action;
      (** the pure DRIP: action of local round [i] from [H[0..i-1]] *)
  decision : Radio_drip.History.t -> bool;
      (** leader predicate on final histories *)
}

val pure_of_protocol :
  Radio_drip.Protocol.t ->
  Radio_drip.History.t ->
  Radio_drip.Protocol.action
(** The pure view of a protocol: spawn a fresh instance and replay the
    engine's call sequence (wake-up, then decide-and-discard before every
    later observation), returning the final decision.  [O(|h|)] per call.
    Raises [Invalid_argument] on the empty history. *)

val of_protocol :
  ?name:string ->
  ?decision:(Radio_drip.History.t -> bool) ->
  Radio_drip.Protocol.t ->
  t
(** Wraps a protocol; [decision] defaults to never electing. *)

val of_election : ?name:string -> Radio_sim.Runner.election -> t

val drip : Radio_config.Config.t -> t
(** The canonical DRIP [D_G] compiled for this configuration
    ({!Canonical.plan_of_run}): stateful protocol, literal pure form,
    singleton-class decision. *)

val pure_drip : Radio_config.Config.t -> t
(** Same plan, but the replay protocol is {!Canonical.pure_protocol}. *)

val of_name : Radio_config.Config.t -> string -> t option
(** Registry used by [anorad mc --protocol]: drip, pure-drip, beacon,
    silent, min-beacon, wave. *)

val names : string list
