module H = Radio_drip.History

type event =
  | E_silence
  | E_message of string
  | E_collision

let equal_event e1 e2 =
  match (e1, e2) with
  | E_silence, E_silence | E_collision, E_collision -> true
  | E_message m1, E_message m2 -> String.equal m1 m2
  | E_silence, _ | E_message _, _ | E_collision, _ -> false

let entry_of_event = function
  | E_silence -> H.Silence
  | E_message m -> H.Message m
  | E_collision -> H.Collision

let pp_event ppf = function
  | E_silence -> Format.pp_print_string ppf "silence"
  | E_message m -> Format.fprintf ppf "message %S" m
  | E_collision -> Format.pp_print_string ppf "collision"

module Intern = struct
  type key = int

  type t = {
    fwd : (int * event, key) Hashtbl.t;
    mutable parents : int array;  (* index key - 1 *)
    mutable events : event array;  (* index key - 1 *)
    mutable next : key;
  }

  let create () =
    {
      fwd = Hashtbl.create 1024;
      parents = Array.make 64 0;
      events = Array.make 64 E_silence;
      next = 1;
    }

  let ensure_capacity t =
    if t.next - 1 >= Array.length t.parents then begin
      let cap = 2 * Array.length t.parents in
      let parents = Array.make cap 0 in
      let events = Array.make cap E_silence in
      Array.blit t.parents 0 parents 0 (Array.length t.parents);
      Array.blit t.events 0 events 0 (Array.length t.events);
      t.parents <- parents;
      t.events <- events
    end

  let get t parent event =
    match Hashtbl.find_opt t.fwd (parent, event) with
    | Some k -> k
    | None ->
        let k = t.next in
        t.next <- k + 1;
        ensure_capacity t;
        t.parents.(k - 1) <- parent;
        t.events.(k - 1) <- event;
        Hashtbl.replace t.fwd (parent, event) k;
        k

  let size t = t.next - 1
  let parent t k = t.parents.(k - 1)
  let event t k = t.events.(k - 1)

  let depth t k =
    let rec go k acc = if k = 0 then acc else go (parent t k) (acc + 1) in
    go k 0

  let history t k =
    let len = depth t k in
    let h = Array.make len H.Silence in
    let rec fill k i =
      if k <> 0 then begin
        h.(i) <- entry_of_event (event t k);
        fill (parent t k) (i - 1)
      end
    in
    fill k (len - 1);
    h
end

type t = int array

let initial n : t = Array.make n 0

let compare_states (a : t) (b : t) =
  match Int.compare (Array.length a) (Array.length b) with
  | 0 ->
      let rec go i =
        if i = Array.length a then 0
        else
          match Int.compare a.(i) b.(i) with
          | 0 -> go (i + 1)
          | c -> c
      in
      go 0
  | c -> c

let compare = compare_states
let equal a b = compare_states a b = 0
let is_asleep (s : t) v = s.(v) = 0
let is_awake (s : t) v = s.(v) > 0
let is_terminated (s : t) v = s.(v) < 0
let all_terminated (s : t) = Array.for_all (fun k -> k < 0) s
let none_awake (s : t) = Array.for_all (fun k -> k <= 0) s
let key (s : t) v = abs s.(v)

let encode ~round_class (s : t) =
  let b = Buffer.create ((4 * Array.length s) + 8) in
  Buffer.add_string b (string_of_int round_class);
  Array.iter
    (fun k ->
      Buffer.add_char b '.';
      Buffer.add_string b (string_of_int k))
    s;
  Buffer.contents b

let permute (phi : int array) (s : t) : t =
  let n = Array.length s in
  let out = Array.make n 0 in
  for v = 0 to n - 1 do
    out.(phi.(v)) <- s.(v)
  done;
  out

let canonicalize autos (s : t) : t =
  match autos with
  | [] | [ _ ] -> s (* at most the identity: nothing to quotient *)
  | autos ->
      List.fold_left
        (fun best phi ->
          let cand = permute phi s in
          if compare_states cand best < 0 then cand else best)
        s autos

let classes (s : t) =
  let n = Array.length s in
  let seen = Array.make n false in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let members = ref [] in
      for w = n - 1 downto v do
        if s.(w) = s.(v) then begin
          seen.(w) <- true;
          members := w :: !members
        end
      done;
      acc := !members :: !acc
    end
  done;
  List.rev !acc

let pp ppf (s : t) =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun v k ->
      if v > 0 then Format.pp_print_string ppf " ";
      if k = 0 then Format.pp_print_string ppf "zzz"
      else if k > 0 then Format.fprintf ppf "+%d" k
      else Format.fprintf ppf "-%d" (-k))
    s;
  Format.fprintf ppf "]@]"
