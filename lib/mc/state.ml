module H = Radio_drip.History

type event =
  | E_silence
  | E_message of string
  | E_collision

let equal_event e1 e2 =
  match (e1, e2) with
  | E_silence, E_silence | E_collision, E_collision -> true
  | E_message m1, E_message m2 -> String.equal m1 m2
  | E_silence, _ | E_message _, _ | E_collision, _ -> false

let entry_of_event = function
  | E_silence -> H.Silence
  | E_message m -> H.Message m
  | E_collision -> H.Collision

let pp_event ppf = function
  | E_silence -> Format.pp_print_string ppf "silence"
  | E_message m -> Format.fprintf ppf "message %S" m
  | E_collision -> Format.pp_print_string ppf "collision"

module Intern = struct
  type key = int

  type t = {
    fwd : (int * event, key) Hashtbl.t;
    mutable parents : int array;  (* index key - 1 *)
    mutable events : event array;  (* index key - 1 *)
    mutable next : key;
  }

  let create () =
    {
      fwd = Hashtbl.create 1024;
      parents = Array.make 64 0;
      events = Array.make 64 E_silence;
      next = 1;
    }

  let ensure_capacity t =
    if t.next - 1 >= Array.length t.parents then begin
      let cap = 2 * Array.length t.parents in
      let parents = Array.make cap 0 in
      let events = Array.make cap E_silence in
      Array.blit t.parents 0 parents 0 (Array.length t.parents);
      Array.blit t.events 0 events 0 (Array.length t.events);
      t.parents <- parents;
      t.events <- events
    end

  let get t parent event =
    match Hashtbl.find_opt t.fwd (parent, event) with
    | Some k -> k
    | None ->
        let k = t.next in
        t.next <- k + 1;
        ensure_capacity t;
        t.parents.(k - 1) <- parent;
        t.events.(k - 1) <- event;
        Hashtbl.replace t.fwd (parent, event) k;
        k

  let size t = t.next - 1
  let parent t k = t.parents.(k - 1)
  let event t k = t.events.(k - 1)

  let depth t k =
    let rec go k acc = if k = 0 then acc else go (parent t k) (acc + 1) in
    go k 0

  let history t k =
    let len = depth t k in
    let h = Array.make len H.Silence in
    let rec fill k i =
      if k <> 0 then begin
        h.(i) <- entry_of_event (event t k);
        fill (parent t k) (i - 1)
      end
    in
    fill k (len - 1);
    h
end

type t = int array

let initial n : t = Array.make n 0

let compare_states (a : t) (b : t) =
  match Int.compare (Array.length a) (Array.length b) with
  | 0 ->
      let rec go i =
        if i = Array.length a then 0
        else
          match Int.compare a.(i) b.(i) with
          | 0 -> go (i + 1)
          | c -> c
      in
      go 0
  | c -> c

let compare = compare_states
let equal a b = compare_states a b = 0
let is_asleep (s : t) v = s.(v) = 0
let is_awake (s : t) v = s.(v) > 0
let is_terminated (s : t) v = s.(v) < 0
let all_terminated (s : t) = Array.for_all (fun k -> k < 0) s
let none_awake (s : t) = Array.for_all (fun k -> k <= 0) s
let key (s : t) v = abs s.(v)

let encode ~round_class (s : t) =
  let b = Buffer.create ((4 * Array.length s) + 8) in
  Buffer.add_string b (string_of_int round_class);
  Array.iter
    (fun k ->
      Buffer.add_char b '.';
      Buffer.add_string b (string_of_int k))
    s;
  Buffer.contents b

let permute (phi : int array) (s : t) : t =
  let n = Array.length s in
  let out = Array.make n 0 in
  for v = 0 to n - 1 do
    out.(phi.(v)) <- s.(v)
  done;
  out

let canonicalize autos (s : t) : t =
  match autos with
  | [] | [ _ ] -> s (* at most the identity: nothing to quotient *)
  | autos ->
      List.fold_left
        (fun best phi ->
          let cand = permute phi s in
          if compare_states cand best < 0 then cand else best)
        s autos

(* Bit-packed state codes.  The explorer's visited set stores millions of
   states, so the per-state key must be compact and allocation-free on the
   hot path: a code is a run of LEB128 varints — round class, crash budget
   spent, then one zigzag-mapped varint per node slot — written straight
   into a caller-supplied byte buffer (the visited set's arena).  Small
   keys (the common case: slot magnitudes follow the interner's dense
   first-seen ids) pack to one byte per node. *)
module Packed = struct
  (* radiolint: allow range-overflow -- zigzag wraps the top bit by
     design; unzigzag inverts it exactly *)
  let zigzag k = (k lsl 1) lxor (k asr (Sys.int_size - 1))
  let unzigzag u = (u lsr 1) lxor (-(u land 1))

  (* radiolint: allow range-overflow -- n is the node-slot count, tens at
     most; the product cannot approach an int *)
  let max_bytes ~n = 10 * (n + 2)

  let write_varint buf pos u =
    let pos = ref pos in
    let u = ref u in
    while !u land lnot 0x7f <> 0 do
      (* radiolint: allow range-index -- pos advances at most 10 bytes per
         varint and callers size the buffer with max_bytes *)
      Bytes.unsafe_set buf !pos (Char.unsafe_chr (0x80 lor (!u land 0x7f)));
      incr pos;
      u := !u lsr 7
    done;
    (* radiolint: allow range-index -- terminator byte of the same bound;
       the loop exit proves u <= 0x7f, so the mask is the identity *)
    Bytes.unsafe_set buf !pos (Char.unsafe_chr (!u land 0x7f));
    !pos + 1

  let read_varint buf pos =
    let pos = ref pos in
    let shift = ref 0 in
    let u = ref 0 in
    let continue = ref true in
    while !continue do
      (* radiolint: allow range-index -- pos stays within the code: every
         byte but the last has bit 7 set and codes end with a terminator
         by construction *)
      let b = Char.code (Bytes.unsafe_get buf !pos) in
      incr pos;
      (* radiolint: allow range-overflow -- shift grows by 7 up to 63 for
         the at-most-10-byte varints write_varint emits *)
      u := !u lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue := b land 0x80 <> 0
    done;
    (!u, !pos)

  let write buf ~pos ~round_class ~spent (s : t) =
    let pos = write_varint buf pos round_class in
    let pos = write_varint buf pos spent in
    let pos = ref pos in
    for v = 0 to Array.length s - 1 do
      pos := write_varint buf !pos (zigzag (Array.unsafe_get s v))
    done;
    !pos

  let pack ~round_class ~spent (s : t) =
    let buf = Bytes.create (max_bytes ~n:(Array.length s)) in
    let len = write buf ~pos:0 ~round_class ~spent s in
    Bytes.sub buf 0 len

  let unpack ~n code =
    let round_class, pos = read_varint code 0 in
    let spent, pos = read_varint code pos in
    let s = Array.make n 0 in
    let pos = ref pos in
    for v = 0 to n - 1 do
      let u, pos' = read_varint code !pos in
      s.(v) <- unzigzag u;
      pos := pos'
    done;
    (round_class, spent, s)
end

let classes (s : t) =
  let n = Array.length s in
  let seen = Array.make n false in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let members = ref [] in
      for w = n - 1 downto v do
        if s.(w) = s.(v) then begin
          seen.(w) <- true;
          members := w :: !members
        end
      done;
      acc := !members :: !acc
    end
  done;
  List.rev !acc

let pp ppf (s : t) =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun v k ->
      if v > 0 then Format.pp_print_string ppf " ";
      if k = 0 then Format.pp_print_string ppf "zzz"
      else if k > 0 then Format.fprintf ppf "+%d" k
      else Format.fprintf ppf "-%d" (-k))
    s;
  Format.fprintf ppf "]@]"
