module Config = Radio_config.Config
module G = Radio_graph.Graph
module History = Radio_drip.History
module Protocol = Radio_drip.Protocol

type outcome = {
  config : Config.t;
  histories : History.t array;
  wake_round : int array;
  forced : bool array;
  done_local : int array;
  all_terminated : bool;
  rounds : int;
  first_transmission : (int * int list) option;
  transmissions_by_node : int array;
  metrics : Metrics.t;
  trace : Trace.t;
}

exception Round_limit_exceeded of outcome

type node_state = {
  mutable instance : Protocol.instance option;  (* None while asleep *)
  mutable awake_at : int;  (* global wake round; -1 while asleep *)
  mutable was_forced : bool;
  mutable finished_at : int;  (* done_v; -1 while running *)
  hist : History.Vec.t;
}

let run ?(max_rounds = 100_000) ?(record_trace = false) proto config =
  let g = Config.graph config in
  let n = Config.size config in
  let metrics = Metrics.Acc.create () in
  let trace = Trace.Acc.create ~enabled:record_trace in
  let nodes =
    Array.init n (fun _ ->
        {
          instance = None;
          awake_at = -1;
          was_forced = false;
          finished_at = -1;
          hist = History.Vec.create ();
        })
  in
  let remaining = ref n in
  let first_tx = ref None in
  let tx_by_node = Array.make n 0 in
  (* Per-round scratch: message transmitted by each node this round, if any. *)
  let tx_msg : string option array = Array.make n None in
  let wake st v ~round entry ~is_forced =
    let inst = proto.Protocol.spawn () in
    st.instance <- Some inst;
    st.awake_at <- round;
    st.was_forced <- is_forced;
    History.Vec.push st.hist entry;
    inst.Protocol.on_wakeup entry;
    if is_forced then begin
      Metrics.Acc.forced_wakeup metrics;
      (* radiolint: allow assert-false — a forced wake-up carries the lone
         neighbour's message by construction (wakeup invariant, §2.1). *)
      let m = match entry with History.Message m -> m | _ -> assert false in
      Trace.Acc.wake trace ~round v (Trace.Forced m)
    end
    else begin
      Metrics.Acc.spontaneous_wakeup metrics;
      Trace.Acc.wake trace ~round v Trace.Spontaneous
    end
  in
  let round = ref 0 in
  let rounds_done = ref 0 in
  while !remaining > 0 && !round < max_rounds do
    let r = !round in
    (* Phase A: decisions of nodes already awake (woken before round r). *)
    Array.fill tx_msg 0 n None;
    let transmitters = ref [] in
    for v = 0 to n - 1 do
      let st = nodes.(v) in
      match st.instance with
      | Some inst when st.finished_at < 0 && st.awake_at < r -> (
          let local = r - st.awake_at in
          match inst.Protocol.decide () with
          | Protocol.Terminate ->
              st.finished_at <- local;
              decr remaining;
              Trace.Acc.terminate trace ~round:r v
          | Protocol.Transmit m ->
              tx_msg.(v) <- Some m;
              transmitters := v :: !transmitters;
              tx_by_node.(v) <- tx_by_node.(v) + 1;
              Metrics.Acc.transmission metrics;
              Trace.Acc.transmit trace ~round:r v m
          | Protocol.Listen -> ())
      | _ -> ()
    done;
    if !transmitters <> [] && !first_tx = None then
      first_tx := Some (r, List.sort compare !transmitters);
    (* Phase B: receptions at awake, running nodes. *)
    for v = 0 to n - 1 do
      let st = nodes.(v) in
      match st.instance with
      | Some inst when st.finished_at < 0 && st.awake_at < r ->
          let entry =
            match tx_msg.(v) with
            | Some _ -> History.Silence (* transmitters hear nothing *)
            | None -> (
                let heard = ref History.Silence in
                let count = ref 0 in
                G.iter_neighbours g v ~f:(fun w ->
                    match tx_msg.(w) with
                    | Some m ->
                        incr count;
                        heard := History.Message m
                    | None -> ());
                match !count with
                | 0 -> History.Silence
                | 1 ->
                    Metrics.Acc.delivery metrics;
                    !heard
                | _ ->
                    Metrics.Acc.collision_heard metrics;
                    History.Collision)
          in
          History.Vec.push st.hist entry;
          inst.Protocol.observe entry
      | _ -> ()
    done;
    (* Phase C: wake-ups of sleeping nodes (forced by a lone transmitting
       neighbour, else spontaneous when the tag says so). *)
    for v = 0 to n - 1 do
      let st = nodes.(v) in
      if st.instance = None then begin
        let count = ref 0 in
        let heard = ref "" in
        G.iter_neighbours g v ~f:(fun w ->
            match tx_msg.(w) with
            | Some m ->
                incr count;
                heard := m
            | None -> ());
        if !count = 1 then
          wake st v ~round:r (History.Message !heard) ~is_forced:true
        else if Config.tag config v = r then
          wake st v ~round:r History.Silence ~is_forced:false
      end
    done;
    incr round;
    rounds_done := !round
  done;
  Metrics.Acc.set_rounds metrics !rounds_done;
  {
    config;
    histories = Array.map (fun st -> History.Vec.snapshot st.hist) nodes;
    wake_round = Array.map (fun st -> st.awake_at) nodes;
    forced = Array.map (fun st -> st.was_forced) nodes;
    done_local = Array.map (fun st -> st.finished_at) nodes;
    all_terminated = !remaining = 0;
    rounds = !rounds_done;
    first_transmission = !first_tx;
    transmissions_by_node = tx_by_node;
    metrics = Metrics.Acc.freeze metrics;
    trace = Trace.Acc.freeze trace;
  }

let run_exn ?max_rounds ?record_trace proto config =
  let o = run ?max_rounds ?record_trace proto config in
  if o.all_terminated then o else raise (Round_limit_exceeded o)

let global_done_round o v =
  if v < 0 || v >= Array.length o.done_local then
    invalid_arg "Engine.global_done_round: bad vertex";
  if o.done_local.(v) < 0 then
    invalid_arg "Engine.global_done_round: node has not terminated";
  o.wake_round.(v) + o.done_local.(v)

let completion_round o =
  let n = Array.length o.done_local in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for v = 0 to n - 1 do
      best := max !best (global_done_round o v)
    done;
    !best
  end
