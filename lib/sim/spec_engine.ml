module C = Radio_config.Config
module G = Radio_graph.Graph
module H = Radio_drip.History
module P = Radio_drip.Protocol

type result = {
  histories : H.t array;
  wake_round : int array;
  forced : bool array;
  done_local : int array;
  all_terminated : bool;
}

(* The immutable per-node view the specification folds over.  [events] is
   the reversed list of history entries including the wake-up entry. *)
type node = {
  id : int;
  instance : P.instance option;  (* None while asleep *)
  woke_at : int;
  was_forced : bool;
  finished : int;  (* done_v, -1 while running *)
  events : H.entry list;
}

let asleep id =
  { id; instance = None; woke_at = -1; was_forced = false; finished = -1; events = [] }

type action_taken =
  | Slept
  | Sent of string
  | Heard  (* listened; entry determined later *)
  | Stopped  (* terminated this round *)
  | Already_done

(* What each awake node does this round, by asking its instance. *)
let intent round node =
  match node.instance with
  | None -> (node, Slept)
  | Some inst ->
      (* Any awake node woke in an earlier round's Phase C, so its local
         round here is [round - woke_at >= 1]. *)
      if node.finished >= 0 then (node, Already_done)
      else begin
        match inst.P.decide () with
        | P.Terminate ->
            ({ node with finished = round - node.woke_at }, Stopped)
        | P.Transmit m -> (node, Sent m)
        | P.Listen -> (node, Heard)
      end

let entry_for_listener nodes intents g v =
  let transmitting =
    List.filter_map
      (fun (n, a) ->
        match a with
        | Sent m when G.mem_edge g v n.id -> Some m
        | _ -> None)
      (List.combine nodes intents)
  in
  match transmitting with
  | [] -> H.Silence
  | [ m ] -> H.Message m
  | _ -> H.Collision

let run ?(max_rounds = 100_000) proto config =
  let g = C.graph config in
  let n = C.size config in
  let rec loop round nodes =
    let finished_everywhere =
      List.for_all (fun node -> node.finished >= 0) nodes
    in
    if finished_everywhere || round >= max_rounds then (nodes, finished_everywhere)
    else begin
      (* Phase A: each awake node picks an action. *)
      let stepped = List.map (intent round) nodes in
      let nodes = List.map fst stepped in
      let intents = List.map snd stepped in
      (* Phase B: receptions. *)
      let nodes =
        List.map2
          (fun node action ->
            match action with
            | Sent _ ->
                (match node.instance with
                | Some inst -> inst.P.observe H.Silence
                (* radiolint: allow assert-false — Sent implies a live,
                   spawned instance (phase A only polls awake nodes). *)
                | None -> assert false);
                { node with events = H.Silence :: node.events }
            | Heard when node.instance <> None && node.woke_at < round
                        && node.finished < 0 ->
                let e = entry_for_listener nodes intents g node.id in
                (match node.instance with
                | Some inst -> inst.P.observe e
                (* radiolint: allow assert-false — the guard just checked
                   node.instance <> None. *)
                | None -> assert false);
                { node with events = e :: node.events }
            | Heard | Slept | Stopped | Already_done -> node)
          nodes intents
      in
      (* Phase C: wake-ups. *)
      let nodes =
        List.map2
          (fun node action ->
            match action with
            | Slept ->
                let incoming =
                  List.filter_map
                    (fun (other, a) ->
                      match a with
                      | Sent m when G.mem_edge g node.id other.id -> Some m
                      | _ -> None)
                    (List.combine nodes intents)
                in
                let wake entry forcedp =
                  let inst = proto.P.spawn () in
                  inst.P.on_wakeup entry;
                  {
                    node with
                    instance = Some inst;
                    woke_at = round;
                    was_forced = forcedp;
                    events = [ entry ];
                  }
                in
                (match incoming with
                | [ m ] -> wake (H.Message m) true
                | _ when C.tag config node.id = round -> wake H.Silence false
                | _ -> node)
            | Sent _ | Heard | Stopped | Already_done -> node)
          nodes intents
      in
      loop (round + 1) nodes
    end
  in
  let nodes, all_terminated = loop 0 (List.init n asleep) in
  let by_id = Array.make n (asleep 0) in
  List.iter (fun node -> by_id.(node.id) <- node) nodes;
  {
    histories = Array.map (fun node -> Array.of_list (List.rev node.events)) by_id;
    wake_round = Array.map (fun node -> node.woke_at) by_id;
    forced = Array.map (fun node -> node.was_forced) by_id;
    done_local = Array.map (fun node -> node.finished) by_id;
    all_terminated;
  }

let agrees_with_engine r (o : Engine.outcome) =
  Array.for_all2 H.equal r.histories o.Engine.histories
  && r.wake_round = o.Engine.wake_round
  && r.forced = o.Engine.forced
  && r.done_local = o.Engine.done_local
  && r.all_terminated = o.Engine.all_terminated
