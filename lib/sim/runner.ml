module History = Radio_drip.History

type election = {
  protocol : Radio_drip.Protocol.t;
  decision : History.t -> bool;
}

type result = {
  outcome : Engine.outcome;
  winners : int list;
  leader : int option;
  rounds_to_elect : int option;
}

let run ?max_rounds ?record_trace e config =
  let outcome = Engine.run ?max_rounds ?record_trace e.protocol config in
  let winners =
    if outcome.Engine.all_terminated then
      List.filter
        (fun v -> e.decision outcome.Engine.histories.(v))
        (List.init (Radio_config.Config.size config) Fun.id)
    else []
  in
  let leader =
    match (outcome.Engine.all_terminated, winners) with
    | true, [ v ] -> Some v
    | _ -> None
  in
  let rounds_to_elect =
    match leader with
    | Some _ -> Some (Engine.completion_round outcome)
    | None -> None
  in
  { outcome; winners; leader; rounds_to_elect }

let elects_unique_leader r = Option.is_some r.leader

let history_classes outcome =
  let hists = outcome.Engine.histories in
  let n = Array.length hists in
  let classes = Array.make n 0 in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if classes.(v) = 0 then begin
      incr next;
      classes.(v) <- !next;
      for w = v + 1 to n - 1 do
        if classes.(w) = 0 && History.equal hists.(v) hists.(w) then
          classes.(w) <- !next
      done
    end
  done;
  classes

let history_class_sizes outcome =
  let classes = history_classes outcome in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    classes;
  (* radiolint: allow hashtbl-iteration — the fold's result is sorted, so
     iteration order cannot leak *)
  List.sort compare (Hashtbl.fold (fun _ s acc -> s :: acc) tbl [])

let unique_history_nodes outcome =
  let classes = history_classes outcome in
  let n = Array.length classes in
  let count = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace count c (1 + Option.value ~default:0 (Hashtbl.find_opt count c)))
    classes;
  List.filter (fun v -> Hashtbl.find count classes.(v) = 1) (List.init n Fun.id)
