type wake_kind =
  | Spontaneous
  | Forced of string

type round_events = {
  round : int;
  transmitters : (int * string) list;
  woken : (int * wake_kind) list;
  terminated : int list;
}

type t = round_events list

let pp_wake ppf = function
  | Spontaneous -> Format.pp_print_string ppf "spontaneous"
  | Forced m -> Format.fprintf ppf "forced by %S" m

let pp_round ppf ev =
  Format.fprintf ppf "@[<v 2>round %d:" ev.round;
  List.iter
    (fun (v, m) -> Format.fprintf ppf "@ node %d transmits %S" v m)
    ev.transmitters;
  List.iter
    (fun (v, k) -> Format.fprintf ppf "@ node %d wakes (%a)" v pp_wake k)
    ev.woken;
  List.iter (fun v -> Format.fprintf ppf "@ node %d terminates" v) ev.terminated;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_round)
    t

module Acc = struct
  type nonrec t = {
    enabled : bool;
    mutable rev_rounds : round_events list;
  }

  let create ~enabled = { enabled; rev_rounds = [] }

  let current a round =
    match a.rev_rounds with
    | ev :: _ when ev.round = round -> ()
    | _ ->
        a.rev_rounds <-
          { round; transmitters = []; woken = []; terminated = [] }
          :: a.rev_rounds

  let update a round f =
    if a.enabled then begin
      current a round;
      match a.rev_rounds with
      | ev :: rest -> a.rev_rounds <- f ev :: rest
      (* radiolint: allow assert-false — [current] above just pushed the
         event record for this round, so the list is non-empty. *)
      | [] -> assert false
    end

  let transmit a ~round v m =
    update a round (fun ev -> { ev with transmitters = (v, m) :: ev.transmitters })

  let wake a ~round v k =
    update a round (fun ev -> { ev with woken = (v, k) :: ev.woken })

  let terminate a ~round v =
    update a round (fun ev -> { ev with terminated = v :: ev.terminated })

  let freeze a =
    List.rev_map
      (fun ev ->
        {
          ev with
          transmitters = List.sort compare ev.transmitters;
          woken = List.sort compare ev.woken;
          terminated = List.sort compare ev.terminated;
        })
      a.rev_rounds
end
