module Engine = Radio_sim.Engine
module Trace = Radio_sim.Trace
module History = Radio_drip.History
module Protocol = Radio_drip.Protocol

let tx_by_round (o : Engine.outcome) =
  let tx = Array.make (max o.Engine.rounds 0) [] in
  List.iter
    (fun (ev : Trace.round_events) ->
      if ev.Trace.round >= 0 && ev.Trace.round < Array.length tx then
        tx.(ev.Trace.round) <- ev.Trace.transmitters)
    o.Engine.trace;
  tx

let is_traced (o : Engine.outcome) = o.Engine.trace <> []

let last_decision_round (o : Engine.outcome) v =
  if o.Engine.done_local.(v) >= 0 then o.Engine.done_local.(v)
  else if o.Engine.wake_round.(v) < 0 then 0
  else Array.length o.Engine.histories.(v) - 1

(* What the engine recorded node [v] as doing in local round [i], derived
   from the trace (authoritative for transmissions) and [done_local]. *)
let recorded_action (o : Engine.outcome) tx v i =
  if o.Engine.done_local.(v) = i then Protocol.Terminate
  else
    let r = o.Engine.wake_round.(v) + i in
    if r < Array.length tx then
      match List.assoc_opt v tx.(r) with
      | Some m -> Protocol.Transmit m
      | None -> Protocol.Listen
    else Protocol.Listen

let pp_action ppf = function
  | Protocol.Listen -> Format.fprintf ppf "Listen"
  | Protocol.Transmit m -> Format.fprintf ppf "Transmit %S" m
  | Protocol.Terminate -> Format.fprintf ppf "Terminate"

let replay (proto : Protocol.t) (o : Engine.outcome) =
  Report.collect @@ fun rep ->
  let traced = is_traced o in
  let tx = tx_by_round o in
  let n = Array.length o.Engine.histories in
  for v = 0 to n - 1 do
    let hist = o.Engine.histories.(v) in
    if Array.length hist > 0 then begin
      let wake = o.Engine.wake_round.(v) in
      let inst = proto.Protocol.spawn () in
      inst.Protocol.on_wakeup hist.(0);
      let last = last_decision_round o v in
      let diverged = ref false in
      let i = ref 1 in
      while (not !diverged) && !i <= last do
        let local = !i in
        let round = wake + local in
        let a = inst.Protocol.decide () in
        (match a with
        | Protocol.Terminate when o.Engine.done_local.(v) <> local ->
            diverged := true;
            rep.Report.f ~node:v ~round ~check:"purity.replay"
              "fresh instance terminated at local round %d but the recorded \
               run %s"
              local
              (if o.Engine.done_local.(v) < 0 then "never terminated"
               else
                 Printf.sprintf "terminated at local round %d"
                   o.Engine.done_local.(v))
        | _ when o.Engine.done_local.(v) = local && a <> Protocol.Terminate ->
            diverged := true;
            rep.Report.f ~node:v ~round ~check:"purity.replay"
              "recorded run terminated at local round %d but the fresh \
               instance decided %a"
              local pp_action a
        | _ when traced ->
            let expected = recorded_action o tx v local in
            if a <> expected then begin
              diverged := true;
              rep.Report.f ~node:v ~round ~check:"purity.replay"
                "local round %d: fresh instance decided %a, recorded run did \
                 %a — instances are not a pure function of the history \
                 (shared mutable state between spawns?)"
                local pp_action a pp_action expected
            end
        | Protocol.Transmit _ ->
            (* Untraced fallback: a transmitter hears [Silence]. *)
            if local < Array.length hist && hist.(local) <> History.Silence
            then begin
              diverged := true;
              rep.Report.f ~node:v ~round ~check:"purity.replay"
                "local round %d: fresh instance transmits but the recorded \
                 entry is not Silence"
                local
            end
        | Protocol.Listen | Protocol.Terminate -> ());
        if (not !diverged) && a <> Protocol.Terminate then
          if local < Array.length hist then inst.Protocol.observe hist.(local);
        incr i
      done
    end
  done

let rerun (proto : Protocol.t) (o : Engine.outcome) =
  if o.Engine.rounds = 0 then []
  else begin
    Report.collect @@ fun rep ->
    let o' = Engine.run ~max_rounds:o.Engine.rounds proto o.Engine.config in
    let n = Array.length o.Engine.histories in
    for v = 0 to n - 1 do
      if not (History.equal o.Engine.histories.(v) o'.Engine.histories.(v))
      then
        rep.Report.f ~node:v ~check:"purity.rerun"
          "history differs between two runs on the same configuration: %s \
           vs %s"
          (History.to_string o.Engine.histories.(v))
          (History.to_string o'.Engine.histories.(v));
      if o.Engine.wake_round.(v) <> o'.Engine.wake_round.(v) then
        rep.Report.f ~node:v ~check:"purity.rerun"
          "wake-up round differs between two runs (%d vs %d)"
          o.Engine.wake_round.(v) o'.Engine.wake_round.(v);
      if o.Engine.done_local.(v) <> o'.Engine.done_local.(v) then
        rep.Report.f ~node:v ~check:"purity.rerun"
          "termination round differs between two runs (%d vs %d)"
          o.Engine.done_local.(v) o'.Engine.done_local.(v)
    done
  end
