(** Anonymity/purity checks on protocol instances (Miller–Pelc–Yadav,
    Section 2.2).

    A deterministic DRIP is a function of the local history alone, and
    [Protocol.t] forbids deterministic instances from sharing mutable state
    across [spawn]s.  These checks catch violations {e dynamically}: the
    recorded history of every node is replayed into a {e fresh} instance and
    the fresh decisions must coincide bit-for-bit with what the original
    instance did during the run.  Any hidden cross-instance state mutated by
    the recorded run makes the replay diverge. *)

val tx_by_round : Radio_sim.Engine.outcome -> (int * string) list array
(** [(node, message)] transmitters per global round, rebuilt from the
    outcome's trace.  Index = global round; length = [outcome.rounds].
    All-empty when the outcome was produced without [~record_trace:true]. *)

val last_decision_round : Radio_sim.Engine.outcome -> int -> int
(** Last local round at which node [v]'s instance was asked to decide:
    [done_local v] for terminated nodes, [history length - 1] for nodes
    still running at the cutoff, [0] for nodes that never woke (no decision
    was ever taken). *)

val recorded_action :
  Radio_sim.Engine.outcome ->
  (int * string) list array ->
  int ->
  int ->
  Radio_drip.Protocol.action
(** [recorded_action o tx v i] is the action node [v] took at local round
    [i] during the recorded run, reconstructed from the trace-derived
    transmitter map [tx] (see {!tx_by_round}) and [done_local].  Only
    meaningful for traced outcomes. *)

val pp_action : Format.formatter -> Radio_drip.Protocol.action -> unit

val replay : Radio_drip.Protocol.t -> Radio_sim.Engine.outcome -> Report.t
(** Replays every node's recorded history into a fresh
    [Protocol.spawn ()] and compares the fresh decisions with the recorded
    run: termination must occur exactly at [done_local], and — when the
    outcome carries a trace — transmissions must reproduce the recorded
    rounds and messages exactly.  Without a trace the check degrades
    gracefully (a replayed [Transmit] is only required to be consistent
    with the node's own history).  Only meaningful for deterministic
    protocols; randomized baselines will legitimately diverge. *)

val rerun : Radio_drip.Protocol.t -> Radio_sim.Engine.outcome -> Report.t
(** Executes the protocol from scratch on [outcome.config] and requires the
    resulting histories, wake-up rounds, wake-up kinds and termination
    rounds to be identical — the engine is deterministic, so any difference
    is nondeterminism inside the protocol (e.g. a stray [Random.*] or
    iteration over a [Hashtbl]). *)
