module Config = Radio_config.Config
module G = Radio_graph.Graph
module Engine = Radio_sim.Engine
module Metrics = Radio_sim.Metrics
module Trace = Radio_sim.Trace
module History = Radio_drip.History
module Protocol = Radio_drip.Protocol

let hlen (o : Engine.outcome) v = Array.length o.Engine.histories.(v)

(* [crashed.(v)] is the global round node [v] crash-stopped at, [-1] when it
   never did.  The pristine checker passes [[||]] — no node ever crashes —
   and every crash-aware branch below collapses to the pristine rule. *)
let crash_of crashed v = if v < Array.length crashed then crashed.(v) else -1

let structural_with ~crashed (o : Engine.outcome) =
  Report.collect @@ fun rep ->
  let n = Config.size o.Engine.config in
  let shape_ok =
    Array.length o.Engine.histories = n
    && Array.length o.Engine.wake_round = n
    && Array.length o.Engine.forced = n
    && Array.length o.Engine.done_local = n
    && Array.length o.Engine.transmissions_by_node = n
  in
  if not shape_ok then
    rep.Report.f ~check:"shape"
      "per-node arrays do not all have length n = %d (histories %d, wake %d, \
       forced %d, done %d, transmissions %d)"
      n
      (Array.length o.Engine.histories)
      (Array.length o.Engine.wake_round)
      (Array.length o.Engine.forced)
      (Array.length o.Engine.done_local)
      (Array.length o.Engine.transmissions_by_node)
  else begin
    let all_done = ref true in
    for v = 0 to n - 1 do
      let wake = o.Engine.wake_round.(v) in
      let dn = o.Engine.done_local.(v) in
      let len = hlen o v in
      let cr = crash_of crashed v in
      (* all_terminated quantifies over live nodes only: a crashed node
         never terminates but must not keep the run "unfinished". *)
      if dn < 0 && cr < 0 then all_done := false;
      if cr >= 0 && dn >= 0 then
        rep.Report.f ~node:v ~round:cr ~check:"termination"
          "crashed node is marked terminated (done_local = %d): crashes only \
           fire on non-terminated nodes"
          dn;
      if wake < 0 then begin
        (* Asleep for the whole run. *)
        if len <> 0 then
          rep.Report.f ~node:v ~check:"history-length"
            "sleeping node has %d history entries" len;
        if o.Engine.forced.(v) then
          rep.Report.f ~node:v ~check:"wakeup" "sleeping node is marked forced";
        if dn >= 0 then
          rep.Report.f ~node:v ~check:"termination"
            "sleeping node is marked terminated (done_local = %d)" dn
      end
      else begin
        if wake >= o.Engine.rounds then
          rep.Report.f ~node:v ~check:"wakeup"
            "wake round %d but only %d rounds were simulated" wake
            o.Engine.rounds;
        (* History length = done_local for terminated nodes (engine.mli):
           the wake-up entry plus one entry per completed local round, the
           terminate decision consuming none. *)
        if cr >= 0 then begin
          (* Crash-stop: the history is the pristine prefix up to the crash
             round — the wake-up entry plus one reception per round strictly
             between wake and crash — and then stops dead. *)
          if wake >= cr then
            rep.Report.f ~node:v ~round:wake ~check:"crash-silence"
              "node woke at round %d at or after its crash round %d" wake cr;
          if len <> cr - wake then
            rep.Report.f ~node:v ~check:"crash-silence"
              "crashed node: history has %d entries, expected crash - wake = \
               %d — the history must stop at the crash"
              len (cr - wake)
        end
        else if dn >= 0 then begin
          if dn < 1 then
            rep.Report.f ~node:v ~check:"termination"
              "done_local = %d < 1: termination cannot precede the first \
               decision round"
              dn;
          if len <> dn then
            rep.Report.f ~node:v ~check:"history-length"
              "terminated node: history has %d entries, done_local = %d" len
              dn;
          if wake + dn > o.Engine.rounds then
            rep.Report.f ~node:v ~check:"termination"
              "terminates at global round %d beyond the %d simulated rounds"
              (wake + dn) o.Engine.rounds
        end
        else if len <> o.Engine.rounds - wake then
          rep.Report.f ~node:v ~check:"history-length"
            "running node: history has %d entries, expected rounds - wake = \
             %d"
            len
            (o.Engine.rounds - wake);
        if len > 0 then begin
          let tag = Config.tag o.Engine.config v in
          (match o.Engine.histories.(v).(0) with
          | History.Collision ->
              rep.Report.f ~node:v ~round:wake ~check:"wakeup"
                "Collision at history index 0: collisions do not wake \
                 sleeping nodes"
          | History.Message _ ->
              if not o.Engine.forced.(v) then
                rep.Report.f ~node:v ~round:wake ~check:"wakeup"
                  "history starts with a message but the wake-up is marked \
                   spontaneous"
          | History.Silence ->
              if o.Engine.forced.(v) then
                rep.Report.f ~node:v ~round:wake ~check:"wakeup"
                  "history starts with Silence but the wake-up is marked \
                   forced");
          if o.Engine.forced.(v) then begin
            if wake > tag then
              rep.Report.f ~node:v ~round:wake ~check:"wakeup"
                "forced wake-up at round %d after the spontaneous tag %d"
                wake tag
          end
          else if wake <> tag then
            rep.Report.f ~node:v ~round:wake ~check:"wakeup"
              "spontaneous wake-up at round %d instead of the tag %d" wake
              tag
        end
      end
    done;
      if o.Engine.all_terminated <> !all_done then
        rep.Report.f ~check:"termination"
          "all_terminated = %b but done_local says %b" o.Engine.all_terminated
          !all_done;
      (* Ledgers. *)
      let m = o.Engine.metrics in
      let tx_sum = Array.fold_left ( + ) 0 o.Engine.transmissions_by_node in
      if tx_sum <> m.Metrics.transmissions then
        rep.Report.f ~check:"ledger"
          "per-node transmission ledger sums to %d, metric says %d" tx_sum
          m.Metrics.transmissions;
      if m.Metrics.rounds <> o.Engine.rounds then
        rep.Report.f ~check:"ledger" "metrics.rounds = %d, outcome.rounds = %d"
          m.Metrics.rounds o.Engine.rounds;
      let forced_count = ref 0 and spont_count = ref 0 in
      let deliveries = ref 0 and collisions = ref 0 in
      for v = 0 to n - 1 do
        if o.Engine.wake_round.(v) >= 0 then
          if o.Engine.forced.(v) then incr forced_count else incr spont_count;
        let h = o.Engine.histories.(v) in
        for i = 1 to Array.length h - 1 do
          match h.(i) with
          | History.Message _ -> incr deliveries
          | History.Collision -> incr collisions
          | History.Silence -> ()
        done
      done;
      if !forced_count <> m.Metrics.forced_wakeups then
        rep.Report.f ~check:"ledger" "forced wake-ups: histories say %d, metric %d"
          !forced_count m.Metrics.forced_wakeups;
      if !spont_count <> m.Metrics.spontaneous_wakeups then
        rep.Report.f ~check:"ledger"
          "spontaneous wake-ups: histories say %d, metric %d" !spont_count
          m.Metrics.spontaneous_wakeups;
      if !deliveries <> m.Metrics.deliveries then
        rep.Report.f ~check:"ledger" "deliveries: histories say %d, metric %d"
          !deliveries m.Metrics.deliveries;
      if !collisions <> m.Metrics.collisions_heard then
        rep.Report.f ~check:"ledger" "collisions heard: histories say %d, metric %d"
          !collisions m.Metrics.collisions_heard;
      (* first_transmission consistency without a trace. *)
      match o.Engine.first_transmission with
      | None ->
          if tx_sum <> 0 then
            rep.Report.f ~check:"ledger"
              "first_transmission = None but %d transmissions were counted"
              tx_sum
      | Some (fr, vs) ->
          if fr < 0 || fr >= o.Engine.rounds then
            rep.Report.f ~round:fr ~check:"ledger"
              "first_transmission round outside the simulated range";
          if vs = [] then
            rep.Report.f ~round:fr ~check:"ledger"
              "first_transmission has an empty transmitter list";
          if List.sort compare vs <> vs then
            rep.Report.f ~round:fr ~check:"ledger"
              "first_transmission node list is not sorted";
          List.iter
            (fun v ->
              if v < 0 || v >= n || o.Engine.transmissions_by_node.(v) = 0
              then
                rep.Report.f ~node:v ~round:fr ~check:"ledger"
                  "first_transmission names a node with no counted \
                   transmissions")
            vs
  end

let structural o = structural_with ~crashed:[||] o

let trace_conformance (o : Engine.outcome) =
  if o.Engine.trace = [] then []
  else
    Report.collect @@ fun rep ->
    let g = Config.graph o.Engine.config in
    let n = Config.size o.Engine.config in
    let tx = Purity.tx_by_round o in
    let transmitted_at r v =
      r >= 0 && r < Array.length tx && List.mem_assoc v tx.(r)
    in
    (* Every traced transmission comes from an awake, running node. *)
    Array.iteri
      (fun r txs ->
        List.iter
          (fun (v, _m) ->
            if v < 0 || v >= n then
              rep.Report.f ~node:v ~round:r ~check:"trace"
                "transmission by an out-of-range node"
            else begin
              let wake = o.Engine.wake_round.(v) in
              let dn = o.Engine.done_local.(v) in
              if wake < 0 || wake >= r then
                rep.Report.f ~node:v ~round:r ~check:"trace"
                  "transmission by a node not yet awake (wake round %d)" wake
              else if dn >= 0 && r - wake >= dn then
                rep.Report.f ~node:v ~round:r ~check:"termination-permanence"
                  "transmission at local round %d but the node terminated at \
                   local round %d — terminated nodes are permanently silent"
                  (r - wake) dn
            end)
          txs)
      tx;
    (* Collision semantics: recompute every reception from the transmitter
       sets and compare with the recorded history entries. *)
    for v = 0 to n - 1 do
      let wake = o.Engine.wake_round.(v) in
      if wake >= 0 then begin
        let h = o.Engine.histories.(v) in
        for i = 1 to Array.length h - 1 do
          let r = wake + i in
          let expected =
            if transmitted_at r v then History.Silence
            else begin
              let count = ref 0 and heard = ref History.Silence in
              G.iter_neighbours g v ~f:(fun w ->
                  if r < Array.length tx then
                    match List.assoc_opt w tx.(r) with
                    | Some m ->
                        incr count;
                        heard := History.Message m
                    | None -> ());
              match !count with
              | 0 -> History.Silence
              | 1 -> !heard
              | _ -> History.Collision
            end
          in
          if not (History.equal_entry h.(i) expected) then
            rep.Report.f ~node:v ~round:r ~check:"collision-semantics"
              "recorded entry %s but the transmitter set implies %s"
              (Format.asprintf "%a" History.pp_entry h.(i))
              (Format.asprintf "%a" History.pp_entry expected)
        done
      end
    done;
    (* Wake-up events: kind, round and uniqueness of the waking
       transmitter. *)
    let lone_neighbour_tx r v =
      let count = ref 0 and msg = ref "" in
      G.iter_neighbours g v ~f:(fun w ->
          if r < Array.length tx then
            match List.assoc_opt w tx.(r) with
            | Some m ->
                incr count;
                msg := m
            | None -> ());
      if !count = 1 then Some !msg else None
    in
    let neighbour_tx_count r v =
      let count = ref 0 in
      G.iter_neighbours g v ~f:(fun w ->
          if r < Array.length tx then
            if List.mem_assoc w tx.(r) then incr count);
      !count
    in
    List.iter
      (fun (ev : Trace.round_events) ->
        let r = ev.Trace.round in
        List.iter
          (fun (v, kind) ->
            if o.Engine.wake_round.(v) <> r then
              rep.Report.f ~node:v ~round:r ~check:"wakeup"
                "trace wakes the node here but wake_round = %d"
                o.Engine.wake_round.(v);
            match kind with
            | Trace.Forced m -> (
                if not o.Engine.forced.(v) then
                  rep.Report.f ~node:v ~round:r ~check:"wakeup"
                    "trace says forced, outcome says spontaneous";
                match lone_neighbour_tx r v with
                | Some m' when m' = m -> ()
                | Some m' ->
                    rep.Report.f ~node:v ~round:r ~check:"forced-uniqueness"
                      "woken by %S but the lone transmitting neighbour sent \
                       %S"
                      m m'
                | None ->
                    rep.Report.f ~node:v ~round:r ~check:"forced-uniqueness"
                      "forced wake-up without exactly one transmitting \
                       neighbour (%d transmit)"
                      (neighbour_tx_count r v))
            | Trace.Spontaneous ->
                if o.Engine.forced.(v) then
                  rep.Report.f ~node:v ~round:r ~check:"wakeup"
                    "trace says spontaneous, outcome says forced";
                if Config.tag o.Engine.config v <> r then
                  rep.Report.f ~node:v ~round:r ~check:"wakeup"
                    "spontaneous wake-up away from the tag %d"
                    (Config.tag o.Engine.config v);
                if neighbour_tx_count r v = 1 then
                  rep.Report.f ~node:v ~round:r ~check:"forced-uniqueness"
                    "exactly one neighbour transmits, so this wake-up should \
                     have been forced")
          ev.Trace.woken;
        List.iter
          (fun v ->
            let expected = r - o.Engine.wake_round.(v) in
            if o.Engine.done_local.(v) <> expected then
              rep.Report.f ~node:v ~round:r ~check:"termination"
                "trace terminates the node here (local round %d) but \
                 done_local = %d"
                expected o.Engine.done_local.(v))
          ev.Trace.terminated)
      o.Engine.trace;
    (* Missed wake-ups: a sleeping node with exactly one transmitting
       neighbour must wake (forced), and a sleeping node must not sleep
       through its tag. *)
    for v = 0 to n - 1 do
      let wake = o.Engine.wake_round.(v) in
      let asleep_through r = wake < 0 || wake > r in
      for r = 0 to o.Engine.rounds - 1 do
        if asleep_through r then begin
          if neighbour_tx_count r v = 1 then
            rep.Report.f ~node:v ~round:r ~check:"forced-uniqueness"
              "sleeping node has exactly one transmitting neighbour but was \
               not woken";
          if Config.tag o.Engine.config v = r then
            rep.Report.f ~node:v ~round:r ~check:"wakeup"
              "node slept through its spontaneous wake-up tag"
        end
      done
    done;
    (* first_transmission against the trace. *)
    let earliest = ref None in
    Array.iteri
      (fun r txs ->
        if txs <> [] && !earliest = None then
          earliest := Some (r, List.sort compare (List.map fst txs)))
      tx;
    if o.Engine.first_transmission <> !earliest then
      rep.Report.f ~check:"trace"
        "first_transmission disagrees with the earliest traced transmission"

let anonymity (o : Engine.outcome) =
  if o.Engine.trace = [] then []
  else
    Report.collect @@ fun rep ->
    let n = Array.length o.Engine.histories in
    let tx = Purity.tx_by_round o in
    let action v i = Purity.recorded_action o tx v i in
    for v = 0 to n - 1 do
      for w = v + 1 to n - 1 do
        let hv = o.Engine.histories.(v) and hw = o.Engine.histories.(w) in
        let lcp = ref 0 in
        let m = min (Array.length hv) (Array.length hw) in
        while !lcp < m && History.equal_entry hv.(!lcp) hw.(!lcp) do
          incr lcp
        done;
        (* Identical prefixes of length i >= 1 force identical actions at
           local round i (Section 2.2). *)
        let last =
          min
            (min (Purity.last_decision_round o v)
               (Purity.last_decision_round o w))
            !lcp
        in
        let i = ref 1 in
        let broken = ref false in
        while (not !broken) && !i <= last do
          let av = action v !i and aw = action w !i in
          if av <> aw then begin
            broken := true;
            rep.Report.f ~node:v ~check:"anonymity"
              "nodes %d and %d share the history prefix %s but act \
               differently at local round %d (%a vs %a)"
              v w
              (History.to_string (Array.sub hv 0 !i))
              !i Purity.pp_action av Purity.pp_action aw
          end;
          incr i
        done
      done
    done

let validate ?protocol (o : Engine.outcome) =
  structural o @ trace_conformance o @ anonymity o
  @
  match protocol with
  | None -> []
  | Some p -> Purity.replay p o @ Purity.rerun p o

let validate_exn ?protocol o =
  match validate ?protocol o with
  | [] -> ()
  | vs -> failwith (Report.to_string vs)

(* -------------------------------------------------------------------- *)
(* Faulty outcomes: the conformance checker for [Radio_faults].          *)

module Fault_plan = Radio_faults.Fault_plan
module Faulty = Radio_faults.Faulty_engine

let ledger_consistency (fo : Faulty.outcome) =
  Report.collect @@ fun rep ->
  let o = fo.Faulty.base in
  let n = Array.length o.Engine.histories in
  let plan = Fault_plan.normalize fo.Faulty.plan in
  if Array.length fo.Faulty.crashed_at <> n then
    rep.Report.f ~check:"shape" "crashed_at has length %d, expected n = %d"
      (Array.length fo.Faulty.crashed_at)
      n
  else if Array.length fo.Faulty.departed_at <> n then
    rep.Report.f ~check:"shape" "departed_at has length %d, expected n = %d"
      (Array.length fo.Faulty.departed_at)
      n
  else begin
    List.iter
      (fun (ev : Faulty.fired) ->
        if not (List.mem ev.Faulty.fault plan) then
          rep.Report.f ~round:ev.Faulty.round ~check:"fault-ledger"
            "ledger fires %s, which the plan never schedules"
            (Format.asprintf "%a" Fault_plan.pp_fault ev.Faulty.fault);
        if ev.Faulty.round < 0 || ev.Faulty.round > o.Engine.rounds then
          rep.Report.f ~round:ev.Faulty.round ~check:"fault-ledger"
            "ledger event fired outside the %d simulated rounds"
            o.Engine.rounds;
        let obs = ev.Faulty.observed_by in
        if List.sort_uniq compare obs <> obs then
          rep.Report.f ~round:ev.Faulty.round ~check:"fault-ledger"
            "observed_by is not sorted and duplicate-free";
        List.iter
          (fun v ->
            if v < 0 || v >= n then
              rep.Report.f ~node:v ~round:ev.Faulty.round
                ~check:"fault-ledger" "observed_by names an out-of-range node")
          obs;
        match ev.Faulty.fault with
        | Fault_plan.Crash { node; round } ->
            if obs <> [] then
              rep.Report.f ~node ~round:ev.Faulty.round ~check:"fault-ledger"
                "a crash is never directly observed but observed_by is \
                 non-empty";
            if ev.Faulty.round <> round then
              rep.Report.f ~node ~round:ev.Faulty.round ~check:"fault-ledger"
                "crash scheduled for round %d fired at round %d" round
                ev.Faulty.round;
            if
              node < 0 || node >= n
              || fo.Faulty.crashed_at.(node) <> round
            then
              rep.Report.f ~node ~round ~check:"fault-ledger"
                "ledger crashes the node here but crashed_at disagrees"
        | Fault_plan.Link_down { round; _ } | Fault_plan.Link_up { round; _ }
          ->
            if obs <> [] then
              rep.Report.f ~round:ev.Faulty.round ~check:"fault-ledger"
                "a link event is never directly observed but observed_by is \
                 non-empty";
            if ev.Faulty.round <> round then
              rep.Report.f ~round:ev.Faulty.round ~check:"fault-ledger"
                "link event scheduled for round %d fired at round %d" round
                ev.Faulty.round
        | Fault_plan.Leave { node; round } ->
            if ev.Faulty.round <> round then
              rep.Report.f ~node ~round:ev.Faulty.round ~check:"fault-ledger"
                "leave scheduled for round %d fired at round %d" round
                ev.Faulty.round;
            if obs <> [] && obs <> [ node ] then
              rep.Report.f ~node ~round ~check:"fault-ledger"
                "a leave is observed by at most the departing node itself"
        | Fault_plan.Join { node; round; _ }
        | Fault_plan.Retag { node; round; _ } ->
            if ev.Faulty.round <> round then
              rep.Report.f ~node ~round:ev.Faulty.round ~check:"fault-ledger"
                "join/retag scheduled for round %d fired at round %d" round
                ev.Faulty.round;
            if obs <> [ node ] then
              rep.Report.f ~node ~round ~check:"fault-ledger"
                "a join/retag is observed by exactly the affected node"
        | Fault_plan.Drop _ | Fault_plan.Noise _ | Fault_plan.Jitter _ -> ())
      fo.Faulty.ledger;
    Array.iteri
      (fun v r ->
        if
          r >= 0
          && not
               (List.exists
                  (fun f ->
                    match f with
                    | Fault_plan.Leave { node; _ } -> node = v
                    | _ -> false)
                  plan)
        then
          rep.Report.f ~node:v ~round:r ~check:"fault-ledger"
            "departed_at records a departure the plan never schedules")
      fo.Faulty.departed_at;
    Array.iteri
      (fun v r ->
        if r >= 0 then begin
          if Fault_plan.crash_round plan v <> Some r then
            rep.Report.f ~node:v ~round:r ~check:"fault-ledger"
              "crashed_at records a crash the plan does not schedule for \
               this round";
          if
            not
              (List.exists
                 (fun (ev : Faulty.fired) ->
                   match ev.Faulty.fault with
                   | Fault_plan.Crash { node; _ } -> node = v
                   | _ -> false)
                 fo.Faulty.ledger)
          then
            rep.Report.f ~node:v ~round:r ~check:"fault-ledger"
              "node crashed but the ledger has no crash event for it"
        end)
      fo.Faulty.crashed_at
  end

(* Fault-aware trace conformance: the same reception/wake-up recomputation
   as [trace_conformance], with the plan's drops removed from the air,
   noise forcing [Collision], and crashed nodes excused from every round at
   or after their crash. *)
let faulty_trace (fo : Faulty.outcome) =
  let o = fo.Faulty.base in
  if o.Engine.trace = [] then []
  else
    Report.collect @@ fun rep ->
    let g = Config.graph o.Engine.config in
    let n = Config.size o.Engine.config in
    let plan = fo.Faulty.plan in
    let crashed_at v = crash_of fo.Faulty.crashed_at v in
    let dead_at r v =
      let c = crashed_at v in
      c >= 0 && r >= c
    in
    let tx = Purity.tx_by_round o in
    let transmitted_at r v =
      r >= 0 && r < Array.length tx && List.mem_assoc v tx.(r)
    in
    (* Audible transmitting neighbours of [v] after the plan's drops. *)
    let audible r v =
      let count = ref 0 and heard = ref "" in
      G.iter_neighbours g v ~f:(fun w ->
          if r < Array.length tx then
            match List.assoc_opt w tx.(r) with
            | Some m ->
                if not (Fault_plan.dropped plan ~src:w ~dst:v ~round:r) then begin
                  incr count;
                  heard := m
                end
            | None -> ());
      (!count, !heard)
    in
    (* Crash silence and the pristine provenance checks on transmissions. *)
    Array.iteri
      (fun r txs ->
        List.iter
          (fun (v, _m) ->
            if v < 0 || v >= n then
              rep.Report.f ~node:v ~round:r ~check:"trace"
                "transmission by an out-of-range node"
            else if dead_at r v then
              rep.Report.f ~node:v ~round:r ~check:"crash-silence"
                "transmission at round %d but the node crashed at round %d — \
                 crashed nodes are permanently silent"
                r (crashed_at v)
            else begin
              let wake = o.Engine.wake_round.(v) in
              let dn = o.Engine.done_local.(v) in
              if wake < 0 || wake >= r then
                rep.Report.f ~node:v ~round:r ~check:"trace"
                  "transmission by a node not yet awake (wake round %d)" wake
              else if dn >= 0 && r - wake >= dn then
                rep.Report.f ~node:v ~round:r ~check:"termination-permanence"
                  "transmission at local round %d but the node terminated at \
                   local round %d"
                  (r - wake) dn
            end)
          txs)
      tx;
    (* Reception semantics under drops and noise: a dropped copy must never
       surface in the receiver's history, and a noisy listener hears
       [Collision] whatever is in the air. *)
    for v = 0 to n - 1 do
      let wake = o.Engine.wake_round.(v) in
      if wake >= 0 then begin
        let h = o.Engine.histories.(v) in
        for i = 1 to Array.length h - 1 do
          let r = wake + i in
          let expected =
            if transmitted_at r v then History.Silence
            else if Fault_plan.noisy plan ~node:v ~round:r then
              History.Collision
            else begin
              match audible r v with
              | 0, _ -> History.Silence
              | 1, m -> History.Message m
              | _ -> History.Collision
            end
          in
          if not (History.equal_entry h.(i) expected) then
            rep.Report.f ~node:v ~round:r ~check:"collision-semantics"
              "recorded entry %s but the post-fault transmitter set implies \
               %s"
              (Format.asprintf "%a" History.pp_entry h.(i))
              (Format.asprintf "%a" History.pp_entry expected)
        done
      end
    done;
    (* Wake-up semantics: forced iff exactly one audible transmitter and no
       noise; noise pins a sleeping node down (collisions do not wake). *)
    for v = 0 to n - 1 do
      let wake = o.Engine.wake_round.(v) in
      if wake >= 0 && not (dead_at wake v) then begin
        let count, _ = audible wake v in
        let noisy = Fault_plan.noisy plan ~node:v ~round:wake in
        if o.Engine.forced.(v) then begin
          if count <> 1 || noisy then
            rep.Report.f ~node:v ~round:wake ~check:"forced-uniqueness"
              "forced wake-up without exactly one audible transmitting \
               neighbour (%d audible%s)"
              count
              (if noisy then ", noisy" else "")
        end
        else if count = 1 && not noisy then
          rep.Report.f ~node:v ~round:wake ~check:"forced-uniqueness"
            "exactly one audible neighbour transmits, so this wake-up \
             should have been forced"
      end;
      (* Missed wake-ups of live sleeping nodes. *)
      let asleep_through r = wake < 0 || wake > r in
      for r = 0 to o.Engine.rounds - 1 do
        if asleep_through r && not (dead_at r v) then begin
          let count, _ = audible r v in
          if count = 1 && not (Fault_plan.noisy plan ~node:v ~round:r) then
            rep.Report.f ~node:v ~round:r ~check:"forced-uniqueness"
              "sleeping node has exactly one audible transmitting neighbour \
               but was not woken";
          if Config.tag o.Engine.config v = r then
            rep.Report.f ~node:v ~round:r ~check:"wakeup"
              "node slept through its spontaneous wake-up tag"
        end
      done
    done;
    (* first_transmission against the trace. *)
    let earliest = ref None in
    Array.iteri
      (fun r txs ->
        if txs <> [] && !earliest = None then
          earliest := Some (r, List.sort compare (List.map fst txs)))
      tx;
    if o.Engine.first_transmission <> !earliest then
      rep.Report.f ~check:"trace"
        "first_transmission disagrees with the earliest traced transmission"

let validate_faulty ?protocol (fo : Faulty.outcome) =
  if Fault_plan.is_empty fo.Faulty.plan && fo.Faulty.ledger = [] then
    validate ?protocol fo.Faulty.base
  else if Fault_plan.has_topology fo.Faulty.plan then
    (* Every other check recomputes semantics against the static graph and
       the original tags; under topology events only the ledger's internal
       consistency is checkable without re-simulating the churn. *)
    ledger_consistency fo
  else
    ledger_consistency fo
    @ structural_with ~crashed:fo.Faulty.crashed_at fo.Faulty.base
    @ faulty_trace fo
    (* A crashed node stops deciding mid-history, which the anonymity
       replay cannot distinguish from a deliberate Listen — the DRIP law is
       only checked when no crash fired. *)
    @ (if Array.for_all (fun c -> c < 0) fo.Faulty.crashed_at then
         anonymity fo.Faulty.base
       else [])
    @
    (* Re-running the pristine engine cannot reproduce a faulty outcome, so
       only the per-node history replay applies here. *)
    match protocol with
    | None -> []
    | Some p -> Purity.replay p fo.Faulty.base

let validate_faulty_exn ?protocol fo =
  match validate_faulty ?protocol fo with
  | [] -> ()
  | vs -> failwith (Report.to_string vs)
