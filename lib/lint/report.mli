(** Diagnostics produced by the model-conformance checkers.

    A violation pins one broken invariant to the node and global round it was
    observed at (when meaningful).  An empty report means the outcome is
    consistent with the Miller–Pelc–Yadav model as specified in
    [lib/sim/engine.mli] and [lib/drip/protocol.mli]. *)

type violation = {
  check : string;  (** stable machine-readable check identifier *)
  node : int option;
  round : int option;  (** global round, when the violation is localized *)
  detail : string;  (** human-readable explanation *)
}

type t = violation list

val v : ?node:int -> ?round:int -> check:string -> string -> violation

val ok : t -> bool
(** [ok r] is [true] iff [r] is empty. *)

type reporter = {
  f :
    'a.
    ?node:int ->
    ?round:int ->
    check:string ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a;
}
(** Accumulating reporter handed to checker bodies; the polymorphic field
    lets one reporter serve format strings of any arity. *)

val collect : (reporter -> unit) -> t
(** [collect body] runs [body] with a fresh reporter and returns the
    violations it filed, in filing order. *)

val pp_violation : Format.formatter -> violation -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string
