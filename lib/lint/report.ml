type violation = {
  check : string;
  node : int option;
  round : int option;
  detail : string;
}

type t = violation list

let v ?node ?round ~check detail = { check; node; round; detail }

let ok = function [] -> true | _ :: _ -> false

type reporter = {
  f :
    'a.
    ?node:int ->
    ?round:int ->
    check:string ->
    ('a, Format.formatter, unit, unit) format4 ->
    'a;
}

let collect body =
  let violations = ref [] in
  let file ?node ?round ~check fmt =
    Format.kasprintf
      (fun detail -> violations := v ?node ?round ~check detail :: !violations)
      fmt
  in
  body { f = file };
  List.rev !violations

let pp_violation ppf { check; node; round; detail } =
  Format.fprintf ppf "[%s]" check;
  (match node with
  | Some n -> Format.fprintf ppf " node %d" n
  | None -> ());
  (match round with
  | Some r -> Format.fprintf ppf " round %d" r
  | None -> ());
  Format.fprintf ppf ": %s" detail

let pp ppf = function
  | [] -> Format.fprintf ppf "no violations"
  | vs ->
      Format.fprintf ppf "%d violation%s:" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      List.iter (fun x -> Format.fprintf ppf "@.  %a" pp_violation x) vs

let to_string r = Format.asprintf "%a" pp r
