(** Model-conformance checker for engine outcomes.

    Verifies that an {!Radio_sim.Engine.outcome} satisfies every invariant
    promised by [lib/sim/engine.mli] — the Miller–Pelc–Yadav model of
    Sections 2.1/2.2:

    - {b shape}: all per-node arrays have length [n]; [all_terminated]
      agrees with [done_local]; terminated nodes satisfy
      [wake + done <= rounds];
    - {b history length}: a terminated node's history has exactly
      [done_local] entries (the terminate decision consumes none); a node
      still running at the cutoff has [rounds - wake_round] entries; a
      sleeping node has none;
    - {b wake-up semantics}: [forced] nodes start with [Message _] and woke
      no later than their tag; spontaneous nodes start with [Silence] and
      woke exactly at their tag; [Collision] never appears at index 0;
    - {b energy/metric ledgers}: [transmissions_by_node] sums to the
      transmission metric; wake-up and reception counters agree with the
      histories;
    - {b collision semantics} (traced outcomes only): replaying the trace's
      transmitter sets through the graph must reproduce every recorded
      history entry — exactly one transmitting neighbour yields its message,
      two or more yield [Collision], transmitters hear [Silence];
    - {b termination permanence} (traced): no node transmits at or after its
      termination round;
    - {b forced wake-up uniqueness} (traced): a sleeping node wakes iff
      exactly one neighbour transmits (else it stays asleep until its tag);
    - {b anonymity} (traced): nodes with identical history prefixes take
      identical actions — the defining property of a DRIP.

    Passing [?protocol] additionally replays each recorded history into a
    fresh [spawn] and re-executes the whole configuration ({!Purity}),
    which catches shared mutable state between instances and internal
    nondeterminism.  Only pass deterministic protocols. *)

val structural : Radio_sim.Engine.outcome -> Report.t
(** The trace-independent checks. *)

val trace_conformance : Radio_sim.Engine.outcome -> Report.t
(** Collision semantics, termination permanence and forced-wake-up
    uniqueness.  Empty when the outcome carries no trace. *)

val anonymity : Radio_sim.Engine.outcome -> Report.t
(** The cross-node DRIP law: identical history prefixes imply identical
    actions.  Empty when the outcome carries no trace. *)

val validate :
  ?protocol:Radio_drip.Protocol.t -> Radio_sim.Engine.outcome -> Report.t
(** All of the above, plus {!Purity.replay} and {!Purity.rerun} when
    [protocol] is given. *)

val validate_exn :
  ?protocol:Radio_drip.Protocol.t -> Radio_sim.Engine.outcome -> unit
(** Raises [Failure] with a rendered report when {!validate} finds
    violations. *)

(** {1 Faulty outcomes}

    {!Radio_faults.Faulty_engine} runs deviate from the pristine model on
    purpose, so the pristine checks would flag every injected fault.  The
    fault-aware validator instead checks the outcome against the model
    {e as perturbed by the plan}:

    - {b fault ledger}: every fired event is scheduled by the plan, rounds
      are in range, [observed_by] is sorted; crashes are unobserved, agree
      with [crashed_at], and every entry of [crashed_at] has a matching
      ledger event;
    - {b crash silence}: a crashed node's history stops at the crash round,
      it is never marked terminated, and (traced) it transmits nothing at or
      after its crash;
    - {b drop semantics} (traced): recomputing every reception with the
      plan's drops removed from the air must reproduce the recorded entries —
      a dropped message never appears in the receiver's history;
    - {b noise semantics} (traced): a noisy listener records [Collision];
      a noisy sleeping node is never force-woken;
    - {b wake-up semantics} (traced): forced iff exactly one {e audible}
      (post-drop) neighbour transmits and no noise.

    On an empty plan with an empty ledger this is exactly {!validate} —
    the identity law extends to the checker. *)

val validate_faulty :
  ?protocol:Radio_drip.Protocol.t ->
  Radio_faults.Faulty_engine.outcome ->
  Report.t
(** [protocol] adds the per-node history replay ({!Purity.replay}); the
    whole-configuration rerun is skipped on non-empty plans (the pristine
    engine cannot reproduce a faulty outcome). *)

val validate_faulty_exn :
  ?protocol:Radio_drip.Protocol.t ->
  Radio_faults.Faulty_engine.outcome ->
  unit
