(** Model-conformance checker for engine outcomes.

    Verifies that an {!Radio_sim.Engine.outcome} satisfies every invariant
    promised by [lib/sim/engine.mli] — the Miller–Pelc–Yadav model of
    Sections 2.1/2.2:

    - {b shape}: all per-node arrays have length [n]; [all_terminated]
      agrees with [done_local]; terminated nodes satisfy
      [wake + done <= rounds];
    - {b history length}: a terminated node's history has exactly
      [done_local] entries (the terminate decision consumes none); a node
      still running at the cutoff has [rounds - wake_round] entries; a
      sleeping node has none;
    - {b wake-up semantics}: [forced] nodes start with [Message _] and woke
      no later than their tag; spontaneous nodes start with [Silence] and
      woke exactly at their tag; [Collision] never appears at index 0;
    - {b energy/metric ledgers}: [transmissions_by_node] sums to the
      transmission metric; wake-up and reception counters agree with the
      histories;
    - {b collision semantics} (traced outcomes only): replaying the trace's
      transmitter sets through the graph must reproduce every recorded
      history entry — exactly one transmitting neighbour yields its message,
      two or more yield [Collision], transmitters hear [Silence];
    - {b termination permanence} (traced): no node transmits at or after its
      termination round;
    - {b forced wake-up uniqueness} (traced): a sleeping node wakes iff
      exactly one neighbour transmits (else it stays asleep until its tag);
    - {b anonymity} (traced): nodes with identical history prefixes take
      identical actions — the defining property of a DRIP.

    Passing [?protocol] additionally replays each recorded history into a
    fresh [spawn] and re-executes the whole configuration ({!Purity}),
    which catches shared mutable state between instances and internal
    nondeterminism.  Only pass deterministic protocols. *)

val structural : Radio_sim.Engine.outcome -> Report.t
(** The trace-independent checks. *)

val trace_conformance : Radio_sim.Engine.outcome -> Report.t
(** Collision semantics, termination permanence and forced-wake-up
    uniqueness.  Empty when the outcome carries no trace. *)

val anonymity : Radio_sim.Engine.outcome -> Report.t
(** The cross-node DRIP law: identical history prefixes imply identical
    actions.  Empty when the outcome carries no trace. *)

val validate :
  ?protocol:Radio_drip.Protocol.t -> Radio_sim.Engine.outcome -> Report.t
(** All of the above, plus {!Purity.replay} and {!Purity.rerun} when
    [protocol] is given. *)

val validate_exn :
  ?protocol:Radio_drip.Protocol.t -> Radio_sim.Engine.outcome -> unit
(** Raises [Failure] with a rendered report when {!validate} finds
    violations. *)
