(* Unit tests for the fault layer (lib/faults): plan data type and
   serialization, the per-fault semantics of the fault-injecting engine and
   its ledger, resilience degradation curves, and the supervised
   re-election loop.  The cross-cutting laws (empty-plan identity, replay
   determinism, perturbed-model conformance) live in test_properties.ml
   (P25-P27); everything here is small and deterministic. *)

module G = Radio_graph.Graph
module C = Radio_config.Config
module F = Radio_config.Families
module H = Radio_drip.History
module P = Radio_drip.Protocol
module Engine = Radio_sim.Engine
module Fe = Election.Feasibility
module FP = Radio_faults.Fault_plan
module FE = Radio_faults.Faulty_engine
module R = Radio_faults.Resilience
module S = Radio_faults.Supervisor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The two standing fixtures: a 4-cycle with staggered tags (everything
   wakes spontaneously, no collisions under silent probes) and the paper's
   H_2 (path 0-1-2-3, tags 2 0 0 3, canonical leader 0). *)
let cycle4 =
  C.create (G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]) [| 0; 1; 2; 3 |]

let h2 = F.h_family 2

let dedicated config =
  match Fe.dedicated_election (Fe.analyze config) with
  | Some e -> e
  | None -> Alcotest.fail "expected a feasible configuration"

let frun ?(config = cycle4) plan proto =
  FE.run ~max_rounds:1_000 ~record_trace:true plan proto config

(* ------------------------------------------------------------------ *)
(* Fault_plan: data, validation, serialization, sampling               *)
(* ------------------------------------------------------------------ *)

let mixed_plan =
  [
    FP.Crash { node = 1; round = 3 };
    FP.Drop { src = 0; dst = 1; round = 2 };
    FP.Noise { node = 2; round = 4 };
    FP.Jitter { node = 3; delta = -1 };
  ]

let test_normalize () =
  let doubled = mixed_plan @ List.rev mixed_plan in
  let n = FP.normalize doubled in
  check_int "dedup" (List.length mixed_plan) (List.length n);
  check "idempotent" true (FP.normalize n = n)

let test_roundtrip () =
  let p = FP.normalize mixed_plan in
  check "to/of_string" true (FP.of_string (FP.to_string p) = p);
  check "empty roundtrip" true (FP.of_string (FP.to_string FP.empty) = [])

let test_parse_comments () =
  let p = FP.of_string "faults\n# a comment\n\ncrash 1 3\n  noise 0 2\n" in
  check "parsed" true
    (FP.normalize p
    = FP.normalize
        [ FP.Crash { node = 1; round = 3 }; FP.Noise { node = 0; round = 2 } ])

let test_parse_rejects_garbage () =
  List.iter
    (fun src ->
      match FP.of_string src with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "of_string accepted %S" src)
    [ "nonsense"; "faults\ncrash 1"; "faults\ndrop 0 x 2"; "faults\nfrob 1 2" ]

let test_validate () =
  let ok p = check "valid" true (Result.is_ok (FP.validate cycle4 p)) in
  let bad p = check "invalid" true (Result.is_error (FP.validate cycle4 p)) in
  ok mixed_plan;
  ok FP.empty;
  bad [ FP.Crash { node = 9; round = 0 } ];
  bad [ FP.Crash { node = 0; round = -1 } ];
  (* 0-2 is a chord the 4-cycle does not have: drops follow edges. *)
  bad [ FP.Drop { src = 0; dst = 2; round = 1 } ];
  bad [ FP.Noise { node = -1; round = 0 } ]

let test_jitter_lookup () =
  let p =
    [ FP.Jitter { node = 0; delta = 2 }; FP.Jitter { node = 0; delta = 1 } ]
  in
  check_int "jitter sums" 3 (FP.jitter_of p 0);
  check_int "no jitter" 0 (FP.jitter_of p 1);
  let eff = FP.apply_jitter p (F.two_cells ()) in
  check "shifted, not renormalized" true (C.tags eff = [| 3; 1 |]);
  let clamped =
    FP.apply_jitter [ FP.Jitter { node = 1; delta = -5 } ] (F.two_cells ())
  in
  check "clamped at 0" true (C.tags clamped = [| 0; 0 |])

let test_sample_deterministic () =
  let draw () =
    FP.sample ~seed:42 ~crashes:2 ~drops:3 ~noise:2 ~jitters:1 ~horizon:10
      cycle4
  in
  let p = draw () in
  check "same seed, same plan" true (p = draw ());
  check "sampled plans validate" true (Result.is_ok (FP.validate cycle4 p));
  let count f = List.length (List.filter f p) in
  check_int "crashes" 2 (count (function FP.Crash _ -> true | _ -> false));
  check_int "drops" 3 (count (function FP.Drop _ -> true | _ -> false));
  check_int "noise" 2 (count (function FP.Noise _ -> true | _ -> false));
  check_int "jitters" 1 (count (function FP.Jitter _ -> true | _ -> false))

let test_crash_schedule_nested () =
  let sched = FP.crash_schedule ~seed:7 ~horizon:12 cycle4 in
  check_int "covers every node" 4 (List.length sched);
  check "a permutation" true
    (List.sort compare (List.map fst sched) = [ 0; 1; 2; 3 ]);
  check "rounds within horizon" true
    (List.for_all (fun (_, r) -> r >= 0 && r < 12) sched);
  check "deterministic" true
    (sched = FP.crash_schedule ~seed:7 ~horizon:12 cycle4)

(* ------------------------------------------------------------------ *)
(* Faulty_engine: per-fault semantics and the ledger                   *)
(* ------------------------------------------------------------------ *)

let test_crash_semantics () =
  (* Node 1 (tag 1) wakes in round 1 and crash-stops in round 3: its
     history freezes at two entries and it never terminates, yet the run
     still counts as fully terminated (crashed nodes are written off). *)
  let proto = P.silent ~lifetime:5 () in
  let fo = frun [ FP.Crash { node = 1; round = 3 } ] proto in
  check_int "crashed_at" 3 fo.FE.crashed_at.(1);
  check_int "never terminates" (-1) fo.FE.base.Engine.done_local.(1);
  check_int "history frozen" 2 (Array.length fo.FE.base.Engine.histories.(1));
  check "others unaffected" true fo.FE.base.Engine.all_terminated;
  check "crash fires unobserved" true
    (fo.FE.ledger
    = [
        {
          FE.round = 3;
          fault = FP.Crash { node = 1; round = 3 };
          observed_by = [];
        };
      ])

let test_drop_semantics () =
  (* Pristine two_cells + beacon: node 0 transmits in round 1, force-waking
     node 1 exactly when its own tag fires.  Dropping that one copy leaves
     node 1 to wake spontaneously into silence. *)
  let config = F.two_cells () in
  let pristine = Engine.run ~max_rounds:100 (P.beacon ()) config in
  check "pristine forced wake" true pristine.Engine.forced.(1);
  let plan = [ FP.Drop { src = 0; dst = 1; round = 1 } ] in
  let fo = frun ~config plan (P.beacon ()) in
  check "drop suppresses forced wake" false fo.FE.base.Engine.forced.(1);
  check "wakes into silence" true
    (fo.FE.base.Engine.histories.(1).(0) = H.Silence);
  check "drop fires at the receiver" true
    (match fo.FE.ledger with
    | [ { FE.round = 1; fault = FP.Drop _; observed_by = [ 1 ] } ] -> true
    | _ -> false)

let test_noise_semantics () =
  (* A listening node hears Collision whatever its neighbours did. *)
  let fo = frun [ FP.Noise { node = 0; round = 2 } ] (P.silent ~lifetime:5 ()) in
  check "listener hears collision" true
    (fo.FE.base.Engine.histories.(0).(2) = H.Collision);
  check "noise fires at the listener" true
    (match fo.FE.ledger with
    | [ { FE.round = 2; fault = FP.Noise _; observed_by = [ 0 ] } ] -> true
    | _ -> false)

let test_noise_suppresses_forced_wake () =
  (* Same beacon scenario as the drop test, but jamming the receiver:
     collisions do not wake, so node 1 again wakes spontaneously. *)
  let config = F.two_cells () in
  let fo = frun ~config [ FP.Noise { node = 1; round = 1 } ] (P.beacon ()) in
  check "no forced wake under noise" false fo.FE.base.Engine.forced.(1);
  check "wakes into silence" true
    (fo.FE.base.Engine.histories.(1).(0) = H.Silence)

let test_jitter_semantics () =
  let config = F.two_cells () in
  let plan = [ FP.Jitter { node = 0; delta = 2 } ] in
  let fo = frun ~config plan (P.silent ~lifetime:1 ()) in
  check "effective config jittered" true
    (C.tags fo.FE.base.Engine.config = [| 2; 1 |]);
  check "original kept" true (C.tags fo.FE.original = [| 0; 1 |]);
  check_int "wakes at the jittered tag" 2 fo.FE.base.Engine.wake_round.(0);
  check "jitter fires up-front" true
    (match fo.FE.ledger with
    | [ { FE.round = 0; fault = FP.Jitter _; observed_by = [ 0 ] } ] -> true
    | _ -> false)

let test_inert_faults_never_fire () =
  (* Scheduled but ineffective: a crash past the end of the run, a drop on
     a silent round, noise at a long-terminated node, and a jitter whose
     clamp changes nothing.  None may enter the ledger, and the run must
     equal the pristine one. *)
  let proto = P.silent ~lifetime:2 () in
  let plan =
    [
      FP.Crash { node = 0; round = 100 };
      FP.Drop { src = 0; dst = 1; round = 0 };
      FP.Noise { node = 0; round = 20 };
      FP.Jitter { node = 0; delta = -3 };
    ]
  in
  let fo = frun plan proto in
  check "ledger empty" true (fo.FE.ledger = []);
  check "no crash recorded" true
    (Array.for_all (fun c -> c = -1) fo.FE.crashed_at);
  check "run equals pristine" true
    (FE.outcome_equal fo.FE.base
       (Engine.run ~max_rounds:1_000 ~record_trace:true proto cycle4))

let test_election_under_faults () =
  let e = dedicated h2 in
  let proto = e.Radio_sim.Runner.protocol in
  let decision = e.Radio_sim.Runner.decision in
  let clean = frun ~config:h2 FP.empty proto in
  check "empty plan elects the leader" true (FE.elected decision clean = Some 0);
  check "leader survives" true (FE.surviving_winners decision clean = [ 0 ]);
  (* Crash-stopping the canonical leader mid-run is fatal: the decision
     function accepts only the singleton class (docs/FAULTS.md). *)
  let crashed = frun ~config:h2 [ FP.Crash { node = 0; round = 3 } ] proto in
  check "crashed leader, no winner" true
    (FE.surviving_winners decision crashed = []);
  check "no election" true (FE.elected decision crashed = None)

(* ------------------------------------------------------------------ *)
(* Resilience: degradation curves                                      *)
(* ------------------------------------------------------------------ *)

let test_resilience_baseline_point () =
  let c = R.crash_sweep ~trials:10 ~name:"h2" h2 in
  check_int "baseline leader" 0 c.R.baseline_leader;
  check_int "a point per intensity 0..n" 5 (List.length c.R.points);
  let p0 = List.hd c.R.points in
  check_int "intensity 0 always succeeds" 10 p0.R.successes;
  check_int "intensity 0 always stable" 10 p0.R.stable;
  Alcotest.(check (float 1e-9)) "intensity 0 overhead" 1.0 (R.overhead c p0)

let test_resilience_monotone () =
  let c = R.crash_sweep ~trials:10 ~name:"h2" h2 in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.R.successes >= b.R.successes && monotone rest
    | _ -> true
  in
  check "success curve non-increasing" true (monotone c.R.points);
  check "crashing everyone kills the election" true
    ((List.nth c.R.points 4).R.successes = 0)

let test_resilience_reproducible () =
  let sweep () = R.crash_sweep ~trials:8 ~name:"h2" h2 in
  let a = sweep () and b = sweep () in
  check "csv byte-for-byte" true (R.to_csv a = R.to_csv b);
  check "chart byte-for-byte" true (R.to_chart a = R.to_chart b);
  check "csv header" true
    (String.length (R.to_csv a) > 0
    && String.sub (R.to_csv a) 0 9 = "intensity")

let test_resilience_infeasible_rejected () =
  match R.crash_sweep ~trials:2 ~name:"sym" (F.symmetric_pair ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on infeasible input"

(* ------------------------------------------------------------------ *)
(* Supervisor: bounded re-election                                     *)
(* ------------------------------------------------------------------ *)

let test_supervisor_clean_first_try () =
  let r = S.supervise ~plan:FP.empty h2 in
  check "elects" true (r.S.leader = Some 0);
  check_int "one attempt" 1 (List.length r.S.attempts);
  check_int "no reseeding" 0 r.S.reseeds;
  let a = List.hd r.S.attempts in
  check "detection" true (a.S.detection = S.Elected 0);
  check "no repair needed" false a.S.repaired;
  check_int "rounds accounted" r.S.total_rounds a.S.rounds

let test_supervisor_recovers_from_noise () =
  (* Jamming the leader's collision detection for the whole election window
     defeats the deployed tags; re-seeded jitter finds tags whose dedicated
     algorithm elects despite the jamming (deterministically: seed 0xFA17
     recovers with leader 1 after three re-seedings). *)
  let plan = List.init 12 (fun i -> FP.Noise { node = 0; round = 3 + i }) in
  let r = S.supervise ~plan h2 in
  check "recovers" true (r.S.leader = Some 1);
  check "reseeded at least once" true (r.S.reseeds >= 1);
  check "attempts = reseeds + 1" true
    (List.length r.S.attempts = r.S.reseeds + 1);
  (* Backoff: round budgets strictly double attempt over attempt. *)
  let rec doubling = function
    | a :: (b :: _ as rest) ->
        b.S.timeout = 2 * a.S.timeout && doubling rest
    | _ -> true
  in
  check "timeouts double" true (doubling r.S.attempts)

let test_supervisor_gives_up () =
  (* Crash-stopping whoever the current tags crown is fatal for that
     attempt; node 0 keeps winning the reseeded instances here, so the
     supervisor exhausts its budget and reports honestly. *)
  let plan = [ FP.Crash { node = 0; round = 3 } ] in
  let r = S.supervise ~max_attempts:3 ~plan h2 in
  check "no leader" true (r.S.leader = None);
  check_int "budget exhausted" 3 (List.length r.S.attempts);
  check "total rounds summed" true
    (r.S.total_rounds
    = List.fold_left (fun acc a -> acc + a.S.rounds) 0 r.S.attempts)

let test_supervisor_deterministic () =
  let plan = List.init 12 (fun i -> FP.Noise { node = 0; round = 3 + i }) in
  let strip r =
    ( r.S.leader,
      r.S.reseeds,
      r.S.total_rounds,
      List.map
        (fun a -> (a.S.index, a.S.timeout, a.S.rounds, a.S.detection))
        r.S.attempts )
  in
  check "same seed, same report" true
    (strip (S.supervise ~plan h2) = strip (S.supervise ~plan h2));
  check "repairs infeasible tags first" true
    ((S.supervise ~plan:FP.empty (F.symmetric_pair ())).S.leader <> None)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "serialization roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "jitter lookup and clamp" `Quick test_jitter_lookup;
          Alcotest.test_case "sampling deterministic" `Quick
            test_sample_deterministic;
          Alcotest.test_case "crash schedule" `Quick test_crash_schedule_nested;
        ] );
      ( "engine",
        [
          Alcotest.test_case "crash-stop" `Quick test_crash_semantics;
          Alcotest.test_case "message drop" `Quick test_drop_semantics;
          Alcotest.test_case "spurious noise" `Quick test_noise_semantics;
          Alcotest.test_case "noise vs forced wake" `Quick
            test_noise_suppresses_forced_wake;
          Alcotest.test_case "tag jitter" `Quick test_jitter_semantics;
          Alcotest.test_case "inert faults" `Quick test_inert_faults_never_fire;
          Alcotest.test_case "election under faults" `Quick
            test_election_under_faults;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "baseline point" `Quick
            test_resilience_baseline_point;
          Alcotest.test_case "monotone degradation" `Quick
            test_resilience_monotone;
          Alcotest.test_case "reproducible output" `Quick
            test_resilience_reproducible;
          Alcotest.test_case "infeasible rejected" `Quick
            test_resilience_infeasible_rejected;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean first try" `Quick
            test_supervisor_clean_first_try;
          Alcotest.test_case "recovers from noise" `Quick
            test_supervisor_recovers_from_noise;
          Alcotest.test_case "gives up honestly" `Quick test_supervisor_gives_up;
          Alcotest.test_case "deterministic" `Quick
            test_supervisor_deterministic;
        ] );
    ]
