(* Unit tests for the fault layer (lib/faults): plan data type and
   serialization, the per-fault semantics of the fault-injecting engine and
   its ledger, resilience degradation curves, and the supervised
   re-election loop.  The cross-cutting laws (empty-plan identity, replay
   determinism, perturbed-model conformance) live in test_properties.ml
   (P25-P27); everything here is small and deterministic. *)

module G = Radio_graph.Graph
module C = Radio_config.Config
module F = Radio_config.Families
module H = Radio_drip.History
module P = Radio_drip.Protocol
module Engine = Radio_sim.Engine
module Fe = Election.Feasibility
module FP = Radio_faults.Fault_plan
module FE = Radio_faults.Faulty_engine
module R = Radio_faults.Resilience
module S = Radio_faults.Supervisor
module Ch = Radio_faults.Churn

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The two standing fixtures: a 4-cycle with staggered tags (everything
   wakes spontaneously, no collisions under silent probes) and the paper's
   H_2 (path 0-1-2-3, tags 2 0 0 3, canonical leader 0). *)
let cycle4 =
  C.create (G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ]) [| 0; 1; 2; 3 |]

let h2 = F.h_family 2

let dedicated config =
  match Fe.dedicated_election (Fe.analyze config) with
  | Some e -> e
  | None -> Alcotest.fail "expected a feasible configuration"

let frun ?(config = cycle4) plan proto =
  FE.run ~max_rounds:1_000 ~record_trace:true plan proto config

(* ------------------------------------------------------------------ *)
(* Fault_plan: data, validation, serialization, sampling               *)
(* ------------------------------------------------------------------ *)

let mixed_plan =
  [
    FP.Crash { node = 1; round = 3 };
    FP.Drop { src = 0; dst = 1; round = 2 };
    FP.Noise { node = 2; round = 4 };
    FP.Jitter { node = 3; delta = -1 };
  ]

let test_normalize () =
  let doubled = mixed_plan @ List.rev mixed_plan in
  let n = FP.normalize doubled in
  check_int "dedup" (List.length mixed_plan) (List.length n);
  check "idempotent" true (FP.normalize n = n)

let test_roundtrip () =
  let p = FP.normalize mixed_plan in
  check "to/of_string" true (FP.of_string (FP.to_string p) = p);
  check "empty roundtrip" true (FP.of_string (FP.to_string FP.empty) = [])

let test_parse_comments () =
  let p = FP.of_string "faults\n# a comment\n\ncrash 1 3\n  noise 0 2\n" in
  check "parsed" true
    (FP.normalize p
    = FP.normalize
        [ FP.Crash { node = 1; round = 3 }; FP.Noise { node = 0; round = 2 } ])

let test_parse_rejects_garbage () =
  List.iter
    (fun src ->
      match FP.of_string src with
      | exception Failure _ -> ()
      | _ -> Alcotest.failf "of_string accepted %S" src)
    [ "nonsense"; "faults\ncrash 1"; "faults\ndrop 0 x 2"; "faults\nfrob 1 2" ]

let test_validate () =
  let ok p = check "valid" true (Result.is_ok (FP.validate cycle4 p)) in
  let bad p = check "invalid" true (Result.is_error (FP.validate cycle4 p)) in
  ok mixed_plan;
  ok FP.empty;
  bad [ FP.Crash { node = 9; round = 0 } ];
  bad [ FP.Crash { node = 0; round = -1 } ];
  (* 0-2 is a chord the 4-cycle does not have: drops follow edges. *)
  bad [ FP.Drop { src = 0; dst = 2; round = 1 } ];
  bad [ FP.Noise { node = -1; round = 0 } ]

let test_jitter_lookup () =
  let p =
    [ FP.Jitter { node = 0; delta = 2 }; FP.Jitter { node = 0; delta = 1 } ]
  in
  check_int "jitter sums" 3 (FP.jitter_of p 0);
  check_int "no jitter" 0 (FP.jitter_of p 1);
  let eff = FP.apply_jitter p (F.two_cells ()) in
  check "shifted, not renormalized" true (C.tags eff = [| 3; 1 |]);
  let clamped =
    FP.apply_jitter [ FP.Jitter { node = 1; delta = -5 } ] (F.two_cells ())
  in
  check "clamped at 0" true (C.tags clamped = [| 0; 0 |])

let test_sample_deterministic () =
  let draw () =
    FP.sample ~seed:42 ~crashes:2 ~drops:3 ~noise:2 ~jitters:1 ~horizon:10
      cycle4
  in
  let p = draw () in
  check "same seed, same plan" true (p = draw ());
  check "sampled plans validate" true (Result.is_ok (FP.validate cycle4 p));
  let count f = List.length (List.filter f p) in
  check_int "crashes" 2 (count (function FP.Crash _ -> true | _ -> false));
  check_int "drops" 3 (count (function FP.Drop _ -> true | _ -> false));
  check_int "noise" 2 (count (function FP.Noise _ -> true | _ -> false));
  check_int "jitters" 1 (count (function FP.Jitter _ -> true | _ -> false))

let test_crash_schedule_nested () =
  let sched = FP.crash_schedule ~seed:7 ~horizon:12 cycle4 in
  check_int "covers every node" 4 (List.length sched);
  check "a permutation" true
    (List.sort compare (List.map fst sched) = [ 0; 1; 2; 3 ]);
  check "rounds within horizon" true
    (List.for_all (fun (_, r) -> r >= 0 && r < 12) sched);
  check "deterministic" true
    (sched = FP.crash_schedule ~seed:7 ~horizon:12 cycle4)

(* ------------------------------------------------------------------ *)
(* Fault_plan: topology events and the hardened parser                 *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let topo_plan =
  [
    FP.Link_down { u = 1; v = 0; round = 2 };
    FP.Link_up { u = 0; v = 2; round = 5 };
    FP.Leave { node = 3; round = 1 };
    FP.Join { node = 3; round = 6; tag = 2 };
    FP.Retag { node = 2; round = 0; tag = 4 };
  ]

let test_topology_roundtrip () =
  let p = FP.normalize (topo_plan @ mixed_plan) in
  check "all nine kinds roundtrip" true (FP.of_string (FP.to_string p) = p);
  check "link endpoints canonicalized" true
    (List.mem (FP.Link_down { u = 0; v = 1; round = 2 }) p);
  check "has_topology" true (FP.has_topology p);
  check "crash-only plan has none" false (FP.has_topology mixed_plan);
  check_int "topology_events filters" 5
    (List.length (FP.topology_events p))

let test_parser_positions_errors () =
  let fails_mentioning src frag =
    match FP.of_string src with
    | exception Failure msg ->
        check (Printf.sprintf "%S in %S" frag msg) true (contains msg frag)
    | _ -> Alcotest.failf "of_string accepted %S" src
  in
  fails_mentioning "faults\ncrash 1" "line 2";
  fails_mentioning "faults\n# ok\ndrop 0 x 2" "line 3";
  fails_mentioning "faults\nlink-down 0 1 2 9" "line 2";
  fails_mentioning "faults\njoin 1 2" "line 2";
  fails_mentioning "nonsense" "line 1"

let test_parser_rejects_duplicates () =
  let dup src =
    match FP.of_string src with
    | exception Failure msg ->
        check "positions both lines" true
          (contains msg "line 3" && contains msg "line 2")
    | _ -> Alcotest.failf "of_string accepted duplicate in %S" src
  in
  dup "faults\ncrash 1 3\ncrash 1 3\n";
  dup "faults\nlink-down 0 1 2\nlink-down 1 0 2\n";
  (* two joins racing to set the same node's tag in the same round
     conflict even though the faults differ *)
  dup "faults\njoin 1 2 3\njoin 1 2 4\n";
  dup "faults\nretag 1 2 3\nretag 1 2 4\n"

let test_topology_validate () =
  let ok p = check "valid" true (Result.is_ok (FP.validate cycle4 p)) in
  let bad p = check "invalid" true (Result.is_error (FP.validate cycle4 p)) in
  ok topo_plan;
  bad [ FP.Link_down { u = 0; v = 0; round = 1 } ];
  bad [ FP.Link_up { u = 0; v = 9; round = 1 } ];
  bad [ FP.Leave { node = 4; round = 0 } ];
  bad [ FP.Join { node = 0; round = 1; tag = -1 } ];
  bad [ FP.Retag { node = 0; round = -2; tag = 1 } ]

let test_sample_topology () =
  let draw () =
    FP.sample ~seed:11 ~link_flaps:2 ~node_flaps:1 ~retags:1 ~horizon:20
      cycle4
  in
  let p = draw () in
  check "deterministic" true (p = draw ());
  check "validates" true (Result.is_ok (FP.validate cycle4 p));
  let count f = List.length (List.filter f p) in
  check_int "downs" 2 (count (function FP.Link_down _ -> true | _ -> false));
  check_int "ups" 2 (count (function FP.Link_up _ -> true | _ -> false));
  check_int "leaves" 1 (count (function FP.Leave _ -> true | _ -> false));
  check_int "joins" 1 (count (function FP.Join _ -> true | _ -> false));
  check_int "retags" 1 (count (function FP.Retag _ -> true | _ -> false));
  (* every flap is ordered: down strictly before up, leave before join *)
  List.iter
    (function
      | FP.Link_down { u; v; round } ->
          check "paired up later" true
            (List.exists
               (function
                 | FP.Link_up { u = u'; v = v'; round = r' } ->
                     u = u' && v = v' && r' > round
                 | _ -> false)
               p)
      | FP.Leave { node; round } ->
          check "paired join later" true
            (List.exists
               (function
                 | FP.Join { node = n'; round = r'; _ } ->
                     n' = node && r' > round
                 | _ -> false)
               p)
      | _ -> ())
    p

let test_topology_at () =
  let plan =
    [
      FP.Link_down { u = 0; v = 1; round = 2 };
      FP.Leave { node = 3; round = 3 };
      FP.Join { node = 3; round = 6; tag = 5 };
      FP.Retag { node = 2; round = 4; tag = 7 };
      FP.Crash { node = 1; round = 5 };
    ]
  in
  let at r = FP.topology_at ~round:r cycle4 plan in
  let t1 = at 1 in
  check "nothing yet" true
    (Array.for_all Fun.id t1.FP.present
    && G.mem_edge t1.FP.graph 0 1
    && t1.FP.tags = [| 0; 1; 2; 3 |]);
  let t3 = at 3 in
  check "link down and leave applied" true
    ((not (G.mem_edge t3.FP.graph 0 1)) && not t3.FP.present.(3));
  let t6 = at 6 in
  check "join restores presence with new tag" true
    (t6.FP.present.(3) && t6.FP.tags.(3) = 5);
  check "retag applied" true (t6.FP.tags.(2) = 7);
  check "crash removes presence" false t6.FP.present.(1)

(* ------------------------------------------------------------------ *)
(* Faulty_engine: per-fault semantics and the ledger                   *)
(* ------------------------------------------------------------------ *)

let test_crash_semantics () =
  (* Node 1 (tag 1) wakes in round 1 and crash-stops in round 3: its
     history freezes at two entries and it never terminates, yet the run
     still counts as fully terminated (crashed nodes are written off). *)
  let proto = P.silent ~lifetime:5 () in
  let fo = frun [ FP.Crash { node = 1; round = 3 } ] proto in
  check_int "crashed_at" 3 fo.FE.crashed_at.(1);
  check_int "never terminates" (-1) fo.FE.base.Engine.done_local.(1);
  check_int "history frozen" 2 (Array.length fo.FE.base.Engine.histories.(1));
  check "others unaffected" true fo.FE.base.Engine.all_terminated;
  check "crash fires unobserved" true
    (fo.FE.ledger
    = [
        {
          FE.round = 3;
          fault = FP.Crash { node = 1; round = 3 };
          observed_by = [];
        };
      ])

let test_drop_semantics () =
  (* Pristine two_cells + beacon: node 0 transmits in round 1, force-waking
     node 1 exactly when its own tag fires.  Dropping that one copy leaves
     node 1 to wake spontaneously into silence. *)
  let config = F.two_cells () in
  let pristine = Engine.run ~max_rounds:100 (P.beacon ()) config in
  check "pristine forced wake" true pristine.Engine.forced.(1);
  let plan = [ FP.Drop { src = 0; dst = 1; round = 1 } ] in
  let fo = frun ~config plan (P.beacon ()) in
  check "drop suppresses forced wake" false fo.FE.base.Engine.forced.(1);
  check "wakes into silence" true
    (fo.FE.base.Engine.histories.(1).(0) = H.Silence);
  check "drop fires at the receiver" true
    (match fo.FE.ledger with
    | [ { FE.round = 1; fault = FP.Drop _; observed_by = [ 1 ] } ] -> true
    | _ -> false)

let test_noise_semantics () =
  (* A listening node hears Collision whatever its neighbours did. *)
  let fo = frun [ FP.Noise { node = 0; round = 2 } ] (P.silent ~lifetime:5 ()) in
  check "listener hears collision" true
    (fo.FE.base.Engine.histories.(0).(2) = H.Collision);
  check "noise fires at the listener" true
    (match fo.FE.ledger with
    | [ { FE.round = 2; fault = FP.Noise _; observed_by = [ 0 ] } ] -> true
    | _ -> false)

let test_noise_suppresses_forced_wake () =
  (* Same beacon scenario as the drop test, but jamming the receiver:
     collisions do not wake, so node 1 again wakes spontaneously. *)
  let config = F.two_cells () in
  let fo = frun ~config [ FP.Noise { node = 1; round = 1 } ] (P.beacon ()) in
  check "no forced wake under noise" false fo.FE.base.Engine.forced.(1);
  check "wakes into silence" true
    (fo.FE.base.Engine.histories.(1).(0) = H.Silence)

let test_jitter_semantics () =
  let config = F.two_cells () in
  let plan = [ FP.Jitter { node = 0; delta = 2 } ] in
  let fo = frun ~config plan (P.silent ~lifetime:1 ()) in
  check "effective config jittered" true
    (C.tags fo.FE.base.Engine.config = [| 2; 1 |]);
  check "original kept" true (C.tags fo.FE.original = [| 0; 1 |]);
  check_int "wakes at the jittered tag" 2 fo.FE.base.Engine.wake_round.(0);
  check "jitter fires up-front" true
    (match fo.FE.ledger with
    | [ { FE.round = 0; fault = FP.Jitter _; observed_by = [ 0 ] } ] -> true
    | _ -> false)

let test_inert_faults_never_fire () =
  (* Scheduled but ineffective: a crash past the end of the run, a drop on
     a silent round, noise at a long-terminated node, and a jitter whose
     clamp changes nothing.  None may enter the ledger, and the run must
     equal the pristine one. *)
  let proto = P.silent ~lifetime:2 () in
  let plan =
    [
      FP.Crash { node = 0; round = 100 };
      FP.Drop { src = 0; dst = 1; round = 0 };
      FP.Noise { node = 0; round = 20 };
      FP.Jitter { node = 0; delta = -3 };
    ]
  in
  let fo = frun plan proto in
  check "ledger empty" true (fo.FE.ledger = []);
  check "no crash recorded" true
    (Array.for_all (fun c -> c = -1) fo.FE.crashed_at);
  check "run equals pristine" true
    (FE.outcome_equal fo.FE.base
       (Engine.run ~max_rounds:1_000 ~record_trace:true proto cycle4))

let test_election_under_faults () =
  let e = dedicated h2 in
  let proto = e.Radio_sim.Runner.protocol in
  let decision = e.Radio_sim.Runner.decision in
  let clean = frun ~config:h2 FP.empty proto in
  check "empty plan elects the leader" true (FE.elected decision clean = Some 0);
  check "leader survives" true (FE.surviving_winners decision clean = [ 0 ]);
  (* Crash-stopping the canonical leader mid-run is fatal: the decision
     function accepts only the singleton class (docs/FAULTS.md). *)
  let crashed = frun ~config:h2 [ FP.Crash { node = 0; round = 3 } ] proto in
  check "crashed leader, no winner" true
    (FE.surviving_winners decision crashed = []);
  check "no election" true (FE.elected decision crashed = None)

(* ------------------------------------------------------------------ *)
(* Faulty_engine: topology events mid-election                         *)
(* ------------------------------------------------------------------ *)

let test_leave_semantics () =
  (* Node 1 (tag 1) wakes in round 1 and leaves in round 3: like a crash,
     except departed_at (not crashed_at) records it. *)
  let proto = P.silent ~lifetime:5 () in
  let fo = frun [ FP.Leave { node = 1; round = 3 } ] proto in
  check_int "departed_at" 3 fo.FE.departed_at.(1);
  check_int "never crashed" (-1) fo.FE.crashed_at.(1);
  check_int "never terminates" (-1) fo.FE.base.Engine.done_local.(1);
  check_int "history frozen" 2 (Array.length fo.FE.base.Engine.histories.(1));
  check "others unaffected" true fo.FE.base.Engine.all_terminated;
  check "leave observed by the departing node" true
    (match fo.FE.ledger with
    | [ { FE.round = 3; fault = FP.Leave _; observed_by = [ 1 ] } ] -> true
    | _ -> false)

let test_join_fresh_incarnation () =
  (* Leave at round 2, rejoin at round 4 with tag 0: the alarm clamps to
     the join round, the node wakes spontaneously as a fresh instance and
     its pre-departure history is discarded. *)
  let proto = P.silent ~lifetime:5 () in
  let plan =
    [ FP.Leave { node = 1; round = 2 }; FP.Join { node = 1; round = 4; tag = 0 } ]
  in
  let fo = frun plan proto in
  check_int "rejoined" (-1) fo.FE.departed_at.(1);
  check_int "fresh wake at the join round" 4 fo.FE.base.Engine.wake_round.(1);
  check "spontaneous wake" false fo.FE.base.Engine.forced.(1);
  check "fresh incarnation terminates" true
    (fo.FE.base.Engine.done_local.(1) >= 0);
  check "everyone terminates" true fo.FE.base.Engine.all_terminated;
  check "ledger: leave then join" true
    (match fo.FE.ledger with
    | [
        { FE.round = 2; fault = FP.Leave _; observed_by = [ 1 ] };
        { FE.round = 4; fault = FP.Join _; observed_by = [ 1 ] };
      ] ->
        true
    | _ -> false)

let test_retag_moves_alarm () =
  (* Node 3 (tag 3) is still asleep in round 1; retagging it to 9 moves
     its spontaneous wake-up. *)
  let fo =
    frun [ FP.Retag { node = 3; round = 1; tag = 9 } ] (P.silent ~lifetime:2 ())
  in
  check_int "wakes at the new alarm" 9 fo.FE.base.Engine.wake_round.(3);
  check "retag observed" true
    (match fo.FE.ledger with
    | [ { FE.round = 1; fault = FP.Retag _; observed_by = [ 3 ] } ] -> true
    | _ -> false)

let test_retag_of_awake_node_inert () =
  (* Node 0 wakes at round 0; a retag at round 2 is inert and the run is
     byte-identical to the pristine one even on the dynamic-graph path. *)
  let proto () = P.silent ~lifetime:3 () in
  let fo = frun [ FP.Retag { node = 0; round = 2; tag = 9 } ] (proto ()) in
  check "ledger empty" true (fo.FE.ledger = []);
  check "run equals pristine" true
    (FE.outcome_equal fo.FE.base
       (Engine.run ~max_rounds:1_000 ~record_trace:true (proto ()) cycle4))

let test_link_down_suppresses_forced_wake () =
  (* The drop-test scenario, but severing the link itself: node 1 must
     wake spontaneously, and the link event fires unobserved. *)
  let config = F.two_cells () in
  let fo =
    frun ~config [ FP.Link_down { u = 0; v = 1; round = 1 } ] (P.beacon ())
  in
  check "no forced wake" false fo.FE.base.Engine.forced.(1);
  check "wakes into silence" true
    (fo.FE.base.Engine.histories.(1).(0) = H.Silence);
  check "link-down fires unobserved" true
    (match fo.FE.ledger with
    | { FE.round = 1; fault = FP.Link_down _; observed_by = [] } :: _ -> true
    | _ -> false)

let test_link_flap_same_round_cancels () =
  (* Down then up in the same round (normalized order) leaves the air
     unchanged: both events fire, the run equals the pristine one. *)
  let config = F.two_cells () in
  let plan =
    [
      FP.Link_up { u = 0; v = 1; round = 1 };
      FP.Link_down { u = 0; v = 1; round = 1 };
    ]
  in
  let fo = frun ~config plan (P.beacon ()) in
  check_int "both fire" 2 (List.length fo.FE.ledger);
  check "run equals pristine" true
    (FE.outcome_equal fo.FE.base
       (Engine.run ~max_rounds:1_000 ~record_trace:true (P.beacon ()) config))

let test_inert_topology_events () =
  (* A link-down on a chord the cycle never had, a link-up on an existing
     edge, a join of a present node and a second leave of an absent one:
     only the first leave fires. *)
  let proto = P.silent ~lifetime:2 () in
  let plan =
    [
      FP.Link_down { u = 0; v = 2; round = 1 };
      FP.Link_up { u = 0; v = 1; round = 1 };
      FP.Join { node = 2; round = 1; tag = 5 };
      FP.Leave { node = 3; round = 1 };
      FP.Leave { node = 3; round = 2 };
    ]
  in
  let fo = frun plan proto in
  check "only the real departure fires" true
    (match fo.FE.ledger with
    | [ { FE.round = 1; fault = FP.Leave { node = 3; _ }; _ } ] -> true
    | _ -> false)

let test_leader_leave_kills_election () =
  (* The canonical leader walking away mid-election is as fatal as a
     crash; the engine reports it via departed_at, not crashed_at. *)
  let e = dedicated h2 in
  let fo =
    frun ~config:h2 [ FP.Leave { node = 0; round = 3 } ]
      e.Radio_sim.Runner.protocol
  in
  check "no winner" true
    (FE.surviving_winners e.Radio_sim.Runner.decision fo = []);
  check_int "departure recorded" 3 fo.FE.departed_at.(0)

(* ------------------------------------------------------------------ *)
(* Churn: epoch supervision                                            *)
(* ------------------------------------------------------------------ *)

let test_churn_clean_single_epoch () =
  let r = Ch.run ~plan:FP.empty ~horizon:100 h2 in
  check_int "one epoch" 1 (List.length r.Ch.epochs);
  check "cold start elects the canonical leader" true
    (r.Ch.final_leader = Some 0);
  check_int "one election" 1 r.Ch.re_elections;
  check "availability below 1 (cold start) but high" true
    (r.Ch.availability > 0.5 && r.Ch.availability < 1.0);
  let e = List.hd r.Ch.epochs in
  check "feasible, no repair" true (e.Ch.feasible && not e.Ch.repaired);
  check_int "no edits" 0 e.Ch.edits_applied

let test_churn_leader_departure_reelects () =
  let plan = [ FP.Leave { node = 0; round = 50 } ] in
  let r = Ch.run ~plan ~horizon:100 h2 in
  check_int "two epochs" 2 (List.length r.Ch.epochs);
  check_int "re-elected after the departure" 2 r.Ch.re_elections;
  check "new leader is not the departed node" true
    (match r.Ch.final_leader with Some l -> l <> 0 | None -> false);
  let e1 = List.nth r.Ch.epochs 1 in
  check_int "one edit" 1 e1.Ch.edits_applied;
  check_int "membership edit rebuilds" 1 e1.Ch.rebuilds;
  check_int "three nodes left" 3 e1.Ch.live;
  check "availability drops below the clean run" true
    (r.Ch.availability
    < (Ch.run ~plan:FP.empty ~horizon:100 h2).Ch.availability)

let test_churn_link_flap_keeps_leader () =
  (* Flapping a non-critical link never deposes the standing leader: only
     one (cold-start) election, incremental deltas reuse labels. *)
  let plan =
    [
      FP.Link_down { u = 2; v = 3; round = 30 };
      FP.Link_up { u = 2; v = 3; round = 60 };
    ]
  in
  let r = Ch.run ~plan ~horizon:90 cycle4 in
  check_int "three epochs" 3 (List.length r.Ch.epochs);
  check_int "only the cold-start election" 1 r.Ch.re_elections;
  let e1 = List.nth r.Ch.epochs 1 in
  check "leader stands through the flap" true
    (e1.Ch.leader <> None && e1.Ch.leader = r.Ch.final_leader);
  check "labels reused incrementally" true
    (e1.Ch.labels_reused > 0 && e1.Ch.rebuilds = 0);
  check "no election during the flap epoch" true (e1.Ch.attempts = 0)

let test_churn_repairs_infeasible_start () =
  (* A fully symmetric start is infeasible; the cold-start epoch must
     repair the tags (written back as incremental edits) and elect. *)
  let sym = C.create (G.of_edges 2 [ (0, 1) ]) [| 0; 0 |] in
  let r = Ch.run ~plan:FP.empty ~horizon:60 sym in
  let e0 = List.hd r.Ch.epochs in
  check "repaired" true e0.Ch.repaired;
  check "edits written back" true (e0.Ch.edits_applied > 0);
  check "elects after repair" true (r.Ch.final_leader <> None)

let test_churn_deterministic () =
  let plan =
    [
      FP.Leave { node = 0; round = 40 };
      FP.Join { node = 0; round = 70; tag = 1 };
    ]
  in
  let show () = Format.asprintf "%a" Ch.pp (Ch.run ~plan ~horizon:100 h2) in
  Alcotest.(check string) "byte-identical replay" (show ()) (show ())

let test_churn_rejects_bad_input () =
  (match Ch.run ~plan:FP.empty ~horizon:0 h2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "horizon 0 accepted");
  match Ch.run ~plan:[ FP.Leave { node = 9; round = 1 } ] ~horizon:10 h2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid plan accepted"

(* ------------------------------------------------------------------ *)
(* Resilience: degradation curves                                      *)
(* ------------------------------------------------------------------ *)

let test_resilience_baseline_point () =
  let c = R.crash_sweep ~trials:10 ~name:"h2" h2 in
  check_int "baseline leader" 0 c.R.baseline_leader;
  check_int "a point per intensity 0..n" 5 (List.length c.R.points);
  let p0 = List.hd c.R.points in
  check_int "intensity 0 always succeeds" 10 p0.R.successes;
  check_int "intensity 0 always stable" 10 p0.R.stable;
  Alcotest.(check (float 1e-9)) "intensity 0 overhead" 1.0 (R.overhead c p0)

let test_resilience_monotone () =
  let c = R.crash_sweep ~trials:10 ~name:"h2" h2 in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.R.successes >= b.R.successes && monotone rest
    | _ -> true
  in
  check "success curve non-increasing" true (monotone c.R.points);
  check "crashing everyone kills the election" true
    ((List.nth c.R.points 4).R.successes = 0)

let test_resilience_reproducible () =
  let sweep () = R.crash_sweep ~trials:8 ~name:"h2" h2 in
  let a = sweep () and b = sweep () in
  check "csv byte-for-byte" true (R.to_csv a = R.to_csv b);
  check "chart byte-for-byte" true (R.to_chart a = R.to_chart b);
  check "csv header" true
    (String.length (R.to_csv a) > 0
    && String.sub (R.to_csv a) 0 9 = "intensity")

let test_resilience_infeasible_rejected () =
  match R.crash_sweep ~trials:2 ~name:"sym" (F.symmetric_pair ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on infeasible input"

(* ------------------------------------------------------------------ *)
(* Supervisor: bounded re-election                                     *)
(* ------------------------------------------------------------------ *)

let test_supervisor_clean_first_try () =
  let r = S.supervise ~plan:FP.empty h2 in
  check "elects" true (r.S.leader = Some 0);
  check_int "one attempt" 1 (List.length r.S.attempts);
  check_int "no reseeding" 0 r.S.reseeds;
  let a = List.hd r.S.attempts in
  check "detection" true (a.S.detection = S.Elected 0);
  check "no repair needed" false a.S.repaired;
  check_int "rounds accounted" r.S.total_rounds a.S.rounds

let test_supervisor_recovers_from_noise () =
  (* Jamming the leader's collision detection for the whole election window
     defeats the deployed tags; re-seeded jitter finds tags whose dedicated
     algorithm elects despite the jamming (deterministically: seed 0xFA17
     recovers with leader 1 after three re-seedings). *)
  let plan = List.init 12 (fun i -> FP.Noise { node = 0; round = 3 + i }) in
  let r = S.supervise ~plan h2 in
  check "recovers" true (r.S.leader = Some 1);
  check "reseeded at least once" true (r.S.reseeds >= 1);
  check "attempts = reseeds + 1" true
    (List.length r.S.attempts = r.S.reseeds + 1);
  (* Backoff: round budgets strictly double attempt over attempt. *)
  let rec doubling = function
    | a :: (b :: _ as rest) ->
        b.S.timeout = 2 * a.S.timeout && doubling rest
    | _ -> true
  in
  check "timeouts double" true (doubling r.S.attempts)

let test_supervisor_gives_up () =
  (* Crash-stopping whoever the current tags crown is fatal for that
     attempt; node 0 keeps winning the reseeded instances here, so the
     supervisor exhausts its budget and reports honestly. *)
  let plan = [ FP.Crash { node = 0; round = 3 } ] in
  let r = S.supervise ~max_attempts:3 ~plan h2 in
  check "no leader" true (r.S.leader = None);
  check_int "budget exhausted" 3 (List.length r.S.attempts);
  check "total rounds summed" true
    (r.S.total_rounds
    = List.fold_left (fun acc a -> acc + a.S.rounds) 0 r.S.attempts)

let test_supervisor_deterministic () =
  let plan = List.init 12 (fun i -> FP.Noise { node = 0; round = 3 + i }) in
  let strip r =
    ( r.S.leader,
      r.S.reseeds,
      r.S.total_rounds,
      List.map
        (fun a -> (a.S.index, a.S.timeout, a.S.rounds, a.S.detection))
        r.S.attempts )
  in
  check "same seed, same report" true
    (strip (S.supervise ~plan h2) = strip (S.supervise ~plan h2));
  check "repairs infeasible tags first" true
    ((S.supervise ~plan:FP.empty (F.symmetric_pair ())).S.leader <> None)

let test_supervisor_max_timeout_caps_backoff () =
  let plan = [ FP.Crash { node = 0; round = 3 } ] in
  let r = S.supervise ~max_attempts:4 ~max_timeout:7 ~plan h2 in
  check "every timeout capped" true
    (List.for_all (fun a -> a.S.timeout <= 7) r.S.attempts);
  check "rounds bounded by the cap" true
    (List.for_all (fun a -> a.S.rounds <= 7) r.S.attempts);
  (* without the cap the budgets double past it *)
  let free = S.supervise ~max_attempts:4 ~plan h2 in
  check "uncapped backoff exceeds the cap" true
    (List.exists (fun a -> a.S.timeout > 7) free.S.attempts)

let test_supervisor_ledger_in_report () =
  let plan = List.init 12 (fun i -> FP.Noise { node = 0; round = 3 + i }) in
  let r = S.supervise ~plan h2 in
  check "ledger length matches faults_fired" true
    (List.for_all
       (fun a -> List.length a.S.ledger = a.S.faults_fired)
       r.S.attempts);
  let rendered = Format.asprintf "%a" S.pp r in
  check "summary present" true (contains rendered "supervisor:");
  (* the winning attempt survived fired noise: its ledger is printed *)
  let elected_fired =
    List.exists
      (fun a ->
        match a.S.detection with
        | S.Elected _ -> a.S.faults_fired > 0
        | _ -> false)
      r.S.attempts
  in
  check "elected attempt's ledger rendered" elected_fired
    (contains rendered "faults survived by the elected attempt")

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "serialization roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "jitter lookup and clamp" `Quick test_jitter_lookup;
          Alcotest.test_case "sampling deterministic" `Quick
            test_sample_deterministic;
          Alcotest.test_case "crash schedule" `Quick test_crash_schedule_nested;
        ] );
      ( "topology-plan",
        [
          Alcotest.test_case "roundtrip with topology events" `Quick
            test_topology_roundtrip;
          Alcotest.test_case "positioned parse errors" `Quick
            test_parser_positions_errors;
          Alcotest.test_case "duplicates rejected with positions" `Quick
            test_parser_rejects_duplicates;
          Alcotest.test_case "validate topology events" `Quick
            test_topology_validate;
          Alcotest.test_case "seeded flap sampling" `Quick test_sample_topology;
          Alcotest.test_case "topology_at folds events" `Quick
            test_topology_at;
        ] );
      ( "engine",
        [
          Alcotest.test_case "crash-stop" `Quick test_crash_semantics;
          Alcotest.test_case "message drop" `Quick test_drop_semantics;
          Alcotest.test_case "spurious noise" `Quick test_noise_semantics;
          Alcotest.test_case "noise vs forced wake" `Quick
            test_noise_suppresses_forced_wake;
          Alcotest.test_case "tag jitter" `Quick test_jitter_semantics;
          Alcotest.test_case "inert faults" `Quick test_inert_faults_never_fire;
          Alcotest.test_case "election under faults" `Quick
            test_election_under_faults;
        ] );
      ( "topology-engine",
        [
          Alcotest.test_case "leave" `Quick test_leave_semantics;
          Alcotest.test_case "join is a fresh incarnation" `Quick
            test_join_fresh_incarnation;
          Alcotest.test_case "retag moves the alarm" `Quick
            test_retag_moves_alarm;
          Alcotest.test_case "retag of awake node inert" `Quick
            test_retag_of_awake_node_inert;
          Alcotest.test_case "link-down vs forced wake" `Quick
            test_link_down_suppresses_forced_wake;
          Alcotest.test_case "same-round flap cancels" `Quick
            test_link_flap_same_round_cancels;
          Alcotest.test_case "inert topology events" `Quick
            test_inert_topology_events;
          Alcotest.test_case "leader departure kills election" `Quick
            test_leader_leave_kills_election;
        ] );
      ( "churn",
        [
          Alcotest.test_case "clean single epoch" `Quick
            test_churn_clean_single_epoch;
          Alcotest.test_case "leader departure re-elects" `Quick
            test_churn_leader_departure_reelects;
          Alcotest.test_case "link flap keeps the leader" `Quick
            test_churn_link_flap_keeps_leader;
          Alcotest.test_case "repairs infeasible start" `Quick
            test_churn_repairs_infeasible_start;
          Alcotest.test_case "deterministic" `Quick test_churn_deterministic;
          Alcotest.test_case "rejects bad input" `Quick
            test_churn_rejects_bad_input;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "baseline point" `Quick
            test_resilience_baseline_point;
          Alcotest.test_case "monotone degradation" `Quick
            test_resilience_monotone;
          Alcotest.test_case "reproducible output" `Quick
            test_resilience_reproducible;
          Alcotest.test_case "infeasible rejected" `Quick
            test_resilience_infeasible_rejected;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean first try" `Quick
            test_supervisor_clean_first_try;
          Alcotest.test_case "recovers from noise" `Quick
            test_supervisor_recovers_from_noise;
          Alcotest.test_case "gives up honestly" `Quick test_supervisor_gives_up;
          Alcotest.test_case "deterministic" `Quick
            test_supervisor_deterministic;
          Alcotest.test_case "max_timeout caps backoff" `Quick
            test_supervisor_max_timeout_caps_backoff;
          Alcotest.test_case "ledger in the report" `Quick
            test_supervisor_ledger_in_report;
        ] );
    ]
