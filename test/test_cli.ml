(* End-to-end tests of the anorad command-line interface: exit codes,
   pipeable output, and artifact round-trips, exercising the installed
   binary exactly as a user would. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The binary is a declared dependency living next to this test in the
   build tree (_build/default/bin/anorad.exe); resolve it relative to the
   test executable itself so the tests work regardless of the caller's
   working directory. *)
let binary =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/anorad.exe"

let run_cmd cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let output = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, output)

let anorad args = run_cmd (Filename.quote binary ^ " " ^ args)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let with_family family m f =
  let path = Filename.temp_file "anorad_cli" ".cfg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, out = anorad (Printf.sprintf "family %s %d" family m) in
      check_int "family exit" 0 code;
      Out_channel.with_open_text path (fun oc -> output_string oc out);
      f path)

let test_family_output () =
  let code, out = anorad "family h 2" in
  check_int "exit" 0 code;
  check "header" true (contains out "config 4");
  check "tags" true (contains out "tags 2 0 0 3")

let test_classify_exit_codes () =
  with_family "h" 2 (fun path ->
      let code, out = anorad ("classify " ^ Filename.quote path) in
      check_int "feasible exit 0" 0 code;
      check "says FEASIBLE" true (contains out "FEASIBLE"));
  with_family "s" 2 (fun path ->
      let code, out = anorad ("classify " ^ Filename.quote path) in
      check_int "infeasible exit 1" 1 code;
      check "says INFEASIBLE" true (contains out "INFEASIBLE"))

let test_elect () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("elect " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "leader named" true (contains out "leader: node 0"))

let test_compile_run_plan_roundtrip () =
  with_family "g" 2 (fun cfg ->
      let plan = Filename.temp_file "anorad_cli" ".plan" in
      Fun.protect
        ~finally:(fun () -> Sys.remove plan)
        (fun () ->
          let code, _ =
            anorad
              (Printf.sprintf "compile %s -o %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "compile exit" 0 code;
          let code, out =
            anorad
              (Printf.sprintf "run-plan %s %s" (Filename.quote plan)
                 (Filename.quote cfg))
          in
          check_int "run-plan exit" 0 code;
          check "elects" true (contains out "leader: node")))

let test_repair () =
  with_family "s" 2 (fun path ->
      let code, out = anorad ("repair " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "plan shown" true (contains out "repair plan");
      check "repaired config printed" true (contains out "config 4"))

let test_audit () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("audit " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "all passed" true (contains out "ALL CHECKS PASSED"))

let test_census_cli () =
  let code, out = anorad "census --max-n 3 --max-span 1" in
  check_int "exit" 0 code;
  check "consistent" true (contains out "consistent: true")

let test_catalog_cli () =
  let code, out = anorad "catalog" in
  check_int "list exit" 0 code;
  check "lists h2" true (contains out "h2");
  let code, out = anorad "catalog s2" in
  check_int "entry exit" 0 code;
  check "emits config" true (contains out "config 4");
  let code, _ = anorad "catalog no-such-entry" in
  check_int "unknown exit" 1 code

let test_optimal_cli () =
  with_family "h" 2 (fun path ->
      let code, out = anorad ("optimal " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "round 2" true (contains out "round (over all algorithms): 2"))

let test_refute_cli () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("refute " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "refuted" true (contains out "universality refuted: true"))

let test_explain_dot_cli () =
  with_family "s" 2 (fun path ->
      let code, out = anorad ("explain --dot " ^ Filename.quote path) in
      check_int "exit (infeasible)" 1 code;
      check "dot output" true (contains out "graph explanation"))

let test_trace_cli () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("trace " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "timeline legend" true (contains out "legend:");
      check "leader decided" true (contains out "leader (by decision function)"))

let test_bad_input () =
  let code, _ = anorad "classify /nonexistent/path.cfg" in
  check "nonzero on missing file" true (code <> 0)

let with_plan content f =
  let path = Filename.temp_file "anorad_cli" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc content);
      f path)

let test_faults_cli () =
  with_family "h" 2 (fun cfg ->
      (* Empty plan: the identity law end to end — election succeeds. *)
      with_plan "faults\n" (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "faults %s %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "empty plan elects" 0 code;
          check "no fault fired" true (contains out "fault ledger (0 fired)");
          check "invariants hold" true
            (contains out "fault-aware model invariants hold");
          check "leader" true (contains out "leader: node 0"));
      (* Crashing the leader: honest failure, ledger shows the crash. *)
      with_plan "faults\ncrash 0 3\n" (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "faults %s %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "no leader exit 1" 1 code;
          check "crash fired" true (contains out "fault ledger (1 fired)");
          check "no winner" true
            (contains out "no unique surviving leader"));
      (* A malformed plan is rejected before anything runs. *)
      with_plan "faults\ncrash 99 0\n" (fun plan ->
          let code, _ =
            anorad
              (Printf.sprintf "faults %s %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "invalid plan exit 2" 2 code))

let test_faults_supervise_cli () =
  with_family "h" 2 (fun cfg ->
      (* Noise jamming the leader defeats the deployed tags; the supervisor
         re-seeds and recovers (deterministically — see test_faults.ml). *)
      let noise =
        String.concat ""
          (List.init 12 (fun i -> Printf.sprintf "noise 0 %d\n" (3 + i)))
      in
      with_plan ("faults\n" ^ noise) (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "faults %s %s --supervise" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "supervisor recovers" 0 code;
          check "attempts reported" true (contains out "attempt 0:");
          check "leader reported" true (contains out "supervisor: leader")))

let test_resilience_cli () =
  with_family "h" 2 (fun cfg ->
      let run () =
        anorad
          (Printf.sprintf "resilience %s --trials 6 --csv -"
             (Filename.quote cfg))
      in
      let code, out = run () in
      check_int "exit" 0 code;
      check "csv header" true
        (contains out
           "intensity,trials,successes,success_rate,stable,stability_rate");
      check "chart drawn" true (contains out "success %");
      (* The whole sweep is a function of the seed: byte-for-byte stable. *)
      let code2, out2 = run () in
      check_int "second run exit" 0 code2;
      check "reproducible byte-for-byte" true (out = out2));
  (* Infeasible input: no election to degrade. *)
  with_family "s" 2 (fun cfg ->
      let code, _ = anorad ("resilience " ^ Filename.quote cfg) in
      check_int "infeasible exit 1" 1 code)

let test_check_trace_plan_cli () =
  with_family "h" 2 (fun cfg ->
      (* Without faults the pristine invariants hold... *)
      let code, out = anorad ("check-trace " ^ Filename.quote cfg) in
      check_int "clean exit" 0 code;
      check "clean verdict" true (contains out "all model invariants hold");
      (* ...and a crash breaks them, with an actionable headline naming the
         offending invariant and node. *)
      with_plan "faults\ncrash 0 3\n" (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "check-trace %s --plan %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "violation exit 2" 2 code;
          check "headline names the invariant" true
            (contains out "check-trace: FAILED: invariant \"");
          check "headline names the node" true (contains out "at node 0")))

let () =
  Alcotest.run "cli"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "family" `Quick test_family_output;
          Alcotest.test_case "classify exits" `Quick test_classify_exit_codes;
          Alcotest.test_case "elect" `Quick test_elect;
          Alcotest.test_case "compile/run-plan" `Quick
            test_compile_run_plan_roundtrip;
          Alcotest.test_case "repair" `Quick test_repair;
          Alcotest.test_case "audit" `Quick test_audit;
          Alcotest.test_case "census" `Quick test_census_cli;
          Alcotest.test_case "catalog" `Quick test_catalog_cli;
          Alcotest.test_case "optimal" `Quick test_optimal_cli;
          Alcotest.test_case "refute" `Quick test_refute_cli;
          Alcotest.test_case "explain --dot" `Quick test_explain_dot_cli;
          Alcotest.test_case "trace" `Quick test_trace_cli;
          Alcotest.test_case "bad input" `Quick test_bad_input;
          Alcotest.test_case "faults" `Quick test_faults_cli;
          Alcotest.test_case "faults --supervise" `Quick
            test_faults_supervise_cli;
          Alcotest.test_case "resilience" `Quick test_resilience_cli;
          Alcotest.test_case "check-trace --plan" `Quick
            test_check_trace_plan_cli;
        ] );
    ]
