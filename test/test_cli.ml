(* End-to-end tests of the anorad command-line interface: exit codes,
   pipeable output, and artifact round-trips, exercising the installed
   binary exactly as a user would. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The binary is a declared dependency living next to this test in the
   build tree (_build/default/bin/anorad.exe); resolve it relative to the
   test executable itself so the tests work regardless of the caller's
   working directory. *)
let binary =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/anorad.exe"

let run_cmd cmd =
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let output = In_channel.input_all ic in
  let status = Unix.close_process_in ic in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, output)

let anorad args = run_cmd (Filename.quote binary ^ " " ^ args)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let with_family family m f =
  let path = Filename.temp_file "anorad_cli" ".cfg" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let code, out = anorad (Printf.sprintf "family %s %d" family m) in
      check_int "family exit" 0 code;
      Out_channel.with_open_text path (fun oc -> output_string oc out);
      f path)

let test_family_output () =
  let code, out = anorad "family h 2" in
  check_int "exit" 0 code;
  check "header" true (contains out "config 4");
  check "tags" true (contains out "tags 2 0 0 3")

let test_classify_exit_codes () =
  with_family "h" 2 (fun path ->
      let code, out = anorad ("classify " ^ Filename.quote path) in
      check_int "feasible exit 0" 0 code;
      check "says FEASIBLE" true (contains out "FEASIBLE"));
  with_family "s" 2 (fun path ->
      let code, out = anorad ("classify " ^ Filename.quote path) in
      check_int "infeasible exit 1" 1 code;
      check "says INFEASIBLE" true (contains out "INFEASIBLE"))

let test_elect () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("elect " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "leader named" true (contains out "leader: node 0"))

let test_compile_run_plan_roundtrip () =
  with_family "g" 2 (fun cfg ->
      let plan = Filename.temp_file "anorad_cli" ".plan" in
      Fun.protect
        ~finally:(fun () -> Sys.remove plan)
        (fun () ->
          let code, _ =
            anorad
              (Printf.sprintf "compile %s -o %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "compile exit" 0 code;
          let code, out =
            anorad
              (Printf.sprintf "run-plan %s %s" (Filename.quote plan)
                 (Filename.quote cfg))
          in
          check_int "run-plan exit" 0 code;
          check "elects" true (contains out "leader: node")))

let test_repair () =
  with_family "s" 2 (fun path ->
      let code, out = anorad ("repair " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "plan shown" true (contains out "repair plan");
      check "repaired config printed" true (contains out "config 4"))

let test_audit () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("audit " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "all passed" true (contains out "ALL CHECKS PASSED"))

let test_census_cli () =
  let code, out = anorad "census --max-n 3 --max-span 1" in
  check_int "exit" 0 code;
  check "consistent" true (contains out "consistent: true")

(* The --jobs determinism contract through the real CLI: a pooled census
   renders byte-for-byte the sequential report (docs/PARALLEL.md). *)
let test_jobs_cli () =
  let code_seq, out_seq = anorad "census --max-n 3 --max-span 1 --jobs 1" in
  let code_par, out_par = anorad "census --max-n 3 --max-span 1 --jobs 2" in
  check_int "jobs 1 exit" 0 code_seq;
  check_int "jobs 2 exit" 0 code_par;
  check "census parallel = sequential" true (String.equal out_seq out_par);
  let code_seq, out_seq = anorad "mc --oracle 3 --jobs 1" in
  let code_par, out_par = anorad "mc --oracle 3 --jobs 2" in
  check_int "oracle jobs 1 exit" 0 code_seq;
  check_int "oracle jobs 2 exit" 0 code_par;
  check "oracle parallel = sequential" true (String.equal out_seq out_par);
  with_family "h" 2 (fun path ->
      let explore jobs =
        anorad
          (Printf.sprintf "mc %s --explore --faults 1 --depth 6 --jobs %d"
             (Filename.quote path) jobs)
      in
      let code_seq, out_seq = explore 1 in
      let code_par, out_par = explore 2 in
      check_int "explore jobs 1 exit" 0 code_seq;
      check_int "explore jobs 2 exit" 0 code_par;
      check "explore parallel = sequential" true
        (String.equal out_seq out_par));
  let code, out = anorad "census --help=plain" in
  check_int "census help exit" 0 code;
  check "census documents --jobs" true (contains out "--jobs");
  check "census documents ANORAD_JOBS" true (contains out "ANORAD_JOBS");
  let code, out = anorad "resilience --help=plain" in
  check_int "resilience help exit" 0 code;
  check "resilience documents --jobs" true (contains out "--jobs")

let test_catalog_cli () =
  let code, out = anorad "catalog" in
  check_int "list exit" 0 code;
  check "lists h2" true (contains out "h2");
  let code, out = anorad "catalog s2" in
  check_int "entry exit" 0 code;
  check "emits config" true (contains out "config 4");
  let code, _ = anorad "catalog no-such-entry" in
  check_int "unknown exit" 1 code

let test_optimal_cli () =
  with_family "h" 2 (fun path ->
      let code, out = anorad ("optimal " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "round 2" true (contains out "round (over all algorithms): 2"))

let test_refute_cli () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("refute " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "refuted" true (contains out "universality refuted: true"))

let test_explain_dot_cli () =
  with_family "s" 2 (fun path ->
      let code, out = anorad ("explain --dot " ^ Filename.quote path) in
      check_int "exit (infeasible)" 1 code;
      check "dot output" true (contains out "graph explanation"))

let test_trace_cli () =
  with_family "h" 1 (fun path ->
      let code, out = anorad ("trace " ^ Filename.quote path) in
      check_int "exit" 0 code;
      check "timeline legend" true (contains out "legend:");
      check "leader decided" true (contains out "leader (by decision function)"))

let test_bad_input () =
  let code, _ = anorad "classify /nonexistent/path.cfg" in
  check "nonzero on missing file" true (code <> 0)

let with_plan content f =
  let path = Filename.temp_file "anorad_cli" ".plan" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc -> output_string oc content);
      f path)

let test_faults_cli () =
  with_family "h" 2 (fun cfg ->
      (* Empty plan: the identity law end to end — election succeeds. *)
      with_plan "faults\n" (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "faults %s %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "empty plan elects" 0 code;
          check "no fault fired" true (contains out "fault ledger (0 fired)");
          check "invariants hold" true
            (contains out "fault-aware model invariants hold");
          check "leader" true (contains out "leader: node 0"));
      (* Crashing the leader: honest failure, ledger shows the crash. *)
      with_plan "faults\ncrash 0 3\n" (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "faults %s %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "no leader exit 1" 1 code;
          check "crash fired" true (contains out "fault ledger (1 fired)");
          check "no winner" true
            (contains out "no unique surviving leader"));
      (* A malformed plan is rejected before anything runs. *)
      with_plan "faults\ncrash 99 0\n" (fun plan ->
          let code, _ =
            anorad
              (Printf.sprintf "faults %s %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "invalid plan exit 2" 2 code))

let test_faults_supervise_cli () =
  with_family "h" 2 (fun cfg ->
      (* Noise jamming the leader defeats the deployed tags; the supervisor
         re-seeds and recovers (deterministically — see test_faults.ml). *)
      let noise =
        String.concat ""
          (List.init 12 (fun i -> Printf.sprintf "noise 0 %d\n" (3 + i)))
      in
      with_plan ("faults\n" ^ noise) (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "faults %s %s --supervise" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "supervisor recovers" 0 code;
          check "attempts reported" true (contains out "attempt 0:");
          check "leader reported" true (contains out "supervisor: leader")))

let test_resilience_cli () =
  with_family "h" 2 (fun cfg ->
      let run () =
        anorad
          (Printf.sprintf "resilience %s --trials 6 --csv -"
             (Filename.quote cfg))
      in
      let code, out = run () in
      check_int "exit" 0 code;
      check "csv header" true
        (contains out
           "intensity,trials,successes,success_rate,stable,stability_rate");
      check "chart drawn" true (contains out "success %");
      (* The whole sweep is a function of the seed: byte-for-byte stable. *)
      let code2, out2 = run () in
      check_int "second run exit" 0 code2;
      check "reproducible byte-for-byte" true (out = out2));
  (* Infeasible input: no election to degrade. *)
  with_family "s" 2 (fun cfg ->
      let code, _ = anorad ("resilience " ^ Filename.quote cfg) in
      check_int "infeasible exit 1" 1 code)

let test_churn_cli () =
  with_family "h" 2 (fun cfg ->
      (* Scripted flaps: the leader leaves and rejoins; the supervisor
         re-elects and the whole report replays byte-for-byte. *)
      with_plan
        "faults\nlink-down 0 1 6\nlink-up 0 1 10\nleave 0 20\njoin 0 26 1\n"
        (fun plan ->
          let run () =
            anorad
              (Printf.sprintf "churn %s --plan %s --horizon 48"
                 (Filename.quote cfg) (Filename.quote plan))
          in
          let code, out = run () in
          check_int "re-elects exit 0" 0 code;
          check "schedule echoed" true (contains out "schedule (4 events)");
          check "epoch lines" true (contains out "epoch 4 @ round 26");
          check "summary" true (contains out "final leader 0");
          let code2, out2 = run () in
          check_int "replay exit" 0 code2;
          check "byte-identical replay" true (String.equal out out2));
      (* Seeded schedules are a pure function of the seed. *)
      let seeded () =
        anorad
          (Printf.sprintf
             "churn %s --horizon 60 --link-flaps 1 --node-flaps 1 --seed 7"
             (Filename.quote cfg))
      in
      let code, out = seeded () in
      check_int "seeded exit" 0 code;
      let _, out2 = seeded () in
      check "seeded deterministic" true (String.equal out out2);
      (* The differential oracle through the pool: byte-identical at any
         jobs level. *)
      let oracle jobs =
        anorad
          (Printf.sprintf "churn %s --oracle 3 --jobs %d" (Filename.quote cfg)
             jobs)
      in
      let code1, o1 = oracle 1 in
      let code2, o2 = oracle 2 in
      check_int "oracle jobs 1 exit" 0 code1;
      check_int "oracle jobs 2 exit" 0 code2;
      check "oracle agrees" true (contains o1 "0 mismatches");
      check "oracle parallel = sequential" true (String.equal o1 o2);
      (* Degenerate horizon is a usage error, not a crash. *)
      let code, _ = anorad (Printf.sprintf "churn %s --horizon 0" (Filename.quote cfg)) in
      check_int "bad horizon exit 2" 2 code)

let test_check_trace_plan_cli () =
  with_family "h" 2 (fun cfg ->
      (* Without faults the pristine invariants hold... *)
      let code, out = anorad ("check-trace " ^ Filename.quote cfg) in
      check_int "clean exit" 0 code;
      check "clean verdict" true (contains out "all model invariants hold");
      (* ...and a crash breaks them, with an actionable headline naming the
         offending invariant and node. *)
      with_plan "faults\ncrash 0 3\n" (fun plan ->
          let code, out =
            anorad
              (Printf.sprintf "check-trace %s --plan %s" (Filename.quote cfg)
                 (Filename.quote plan))
          in
          check_int "violation exit 2" 2 code;
          check "headline names the invariant" true
            (contains out "check-trace: FAILED: invariant \"");
          check "headline names the node" true (contains out "at node 0")))

(* ------------------------------------------------------------------ *)
(* lint: flags, exit codes, SARIF, baseline                            *)
(* ------------------------------------------------------------------ *)

let write_file path content =
  Out_channel.with_open_text path (fun oc -> output_string oc content)

(* A throwaway lib/ tree the lint path predicates recognize. *)
let with_lint_tree files f =
  let dir = Filename.temp_file "anorad_lint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () ->
      List.iter
        (fun (rel, content) ->
          let path = Filename.concat dir rel in
          let rec mkdirs d =
            if not (Sys.file_exists d) then begin
              mkdirs (Filename.dirname d);
              Unix.mkdir d 0o755
            end
          in
          mkdirs (Filename.dirname path);
          write_file path content)
        files;
      f (Filename.concat dir "lib"))

let test_lint_help () =
  let code, out = anorad "lint --help" in
  check_int "help exit" 0 code;
  check "documents exit status" true (contains out "EXIT STATUS");
  check "documents the clean exit" true (contains out "every finding baselined");
  check "documents the findings exit" true
    (contains out "lint findings were reported");
  check "documents the usage exit" true (contains out "usage error");
  check "documents --deep" true (contains out "--deep");
  check "documents --baseline" true (contains out "--baseline");
  check "documents --sarif" true (contains out "--sarif")

let test_lint_clean_and_findings () =
  with_lint_tree
    [
      ("lib/core/good.ml", "let double x = x * 2\n");
      ("lib/core/good.mli", "val double : int -> int\n");
    ]
    (fun lib ->
      let code, _ = anorad ("lint " ^ Filename.quote lib) in
      check_int "clean tree exits 0" 0 code);
  with_lint_tree
    [
      ("lib/core/bad.ml", "let x = Random.int 10\n");
      ("lib/core/bad.mli", "val x : int\n");
    ]
    (fun lib ->
      let code, out = anorad ("lint " ^ Filename.quote lib) in
      check_int "findings exit 1" 1 code;
      check "names the rule" true (contains out "[random]"));
  let code, _ = anorad "lint /nonexistent/path" in
  check_int "missing path exits 2" 2 code

let test_lint_deep_witness_chain () =
  with_lint_tree
    [
      ( "lib/core/util.ml",
        "let shuffle arr = ignore (Random.int (Array.length arr)); arr\n" );
      ("lib/core/util.mli", "val shuffle : int array -> int array\n");
      ("lib/drip/drip.ml", "let step order = Util.shuffle order\n");
      ("lib/drip/drip.mli", "val step : int array -> int array\n");
    ]
    (fun lib ->
      (* Shallow: only the direct Random use fires. *)
      let code, out = anorad ("lint " ^ Filename.quote lib) in
      check_int "shallow exit 1" 1 code;
      check "no taint without --deep" false (contains out "[taint]");
      (* Deep: the caller is flagged with the full witness chain. *)
      let code, out = anorad ("lint --deep " ^ Filename.quote lib) in
      check_int "deep exit 1" 1 code;
      check "taint reported" true (contains out "[taint]");
      check "witness chain printed" true
        (contains out "Drip.step") ;
      check "chain reaches the primitive" true (contains out "Random.int"))

(* Negative control for the escape analysis: a pool task mutating a
   module-level Hashtbl through a 2-edge call chain.  lib/analysis is
   outside the taint boundary and the toplevel-mutable-state scope on
   purpose, so only --effects can see the hazard. *)
let effect_escape_tree =
  [
    ( "lib/analysis/tally.ml",
      "let cache = Hashtbl.create 16\n\
       let note x = Hashtbl.replace cache x x\n\
       let go pool xs =\n\
      \  Radio_exec.Pool.map pool ~f:(fun x -> note x) xs\n" );
    ("lib/analysis/tally.mli", "val go : 'a -> int list -> int list\n");
  ]

let test_lint_effects () =
  with_lint_tree effect_escape_tree (fun lib ->
      (* The per-file rules cannot see the hazard: clean without --effects. *)
      let code, out = anorad ("lint " ^ Filename.quote lib) in
      check_int "shallow exit 0" 0 code;
      check "no effect finding without --effects" false
        (contains out "[effect]");
      (* --effects reports it with the full witness chain. *)
      let code, out = anorad ("lint --effects " ^ Filename.quote lib) in
      check_int "effects exit 1" 1 code;
      check "effect rule named" true (contains out "[effect]");
      check "class named" true (contains out "SharedMut");
      check "witness chain printed" true
        (contains out "Tally.go → Tally.note → Tally.cache");
      (* --deep implies --effects. *)
      let code, out = anorad ("lint --deep " ^ Filename.quote lib) in
      check_int "deep exit 1" 1 code;
      check "deep implies effects" true (contains out "[effect]");
      (* SARIF carries the lattice class as a result property. *)
      let code, out =
        anorad ("lint --effects --sarif - " ^ Filename.quote lib)
      in
      check_int "sarif exit 1" 1 code;
      check "sarif effect rule" true (contains out "\"ruleId\":\"effect\"");
      check "sarif effectClass property" true
        (contains out "\"properties\":{\"effectClass\":\"SharedMut\"}");
      (* A baselined fingerprint suppresses it; a stale entry warns. *)
      let tally =
        Filename.concat (Filename.dirname lib) "lib/analysis/tally.ml"
      in
      let baseline = Filename.temp_file "anorad_lint" ".baseline" in
      Fun.protect
        ~finally:(fun () -> Sys.remove baseline)
        (fun () ->
          write_file baseline
            (Printf.sprintf "effect:%s:Tally.go:SharedMut\n" tally);
          let code, _ =
            anorad
              (Printf.sprintf "lint --effects --baseline %s %s"
                 (Filename.quote baseline) (Filename.quote lib))
          in
          check_int "baselined escape exits 0" 0 code;
          (* Without --effects the entry cannot be vetted, so the scan
             stays clean and silent about it. *)
          let code, _ =
            anorad
              (Printf.sprintf "lint --baseline %s %s"
                 (Filename.quote baseline) (Filename.quote lib))
          in
          check_int "shallow scan leaves effect entries alone" 0 code));
  (* A clean tree exits 0 under --effects. *)
  with_lint_tree
    [
      ("lib/analysis/pure.ml", "let double pool xs = Radio_exec.Pool.map pool ~f:(fun x -> x * 2) xs\n");
      ("lib/analysis/pure.mli", "val double : 'a -> int list -> int list\n");
    ]
    (fun lib ->
      let code, _ = anorad ("lint --effects " ^ Filename.quote lib) in
      check_int "clean tree exits 0" 0 code)

let test_effects_cmd () =
  with_lint_tree effect_escape_tree (fun lib ->
      let code, out = anorad ("effects " ^ Filename.quote lib) in
      check_int "listing exit 0" 0 code;
      check "classifies the chain head" true (contains out "Tally.note");
      check "names the class" true (contains out "SharedMut");
      let code, out = anorad ("effects --summary " ^ Filename.quote lib) in
      check_int "summary exit 0" 0 code;
      check "census header" true (contains out "module");
      check "per-module row" true (contains out "Tally");
      check "total row" true (contains out "total"))

let test_lint_sarif_stdout () =
  with_lint_tree
    [ ("lib/core/bad.ml", "let x = Random.int 10\n") ]
    (fun lib ->
      let code, out = anorad ("lint --sarif - " ^ Filename.quote lib) in
      check_int "findings still exit 1" 1 code;
      check "sarif version" true (contains out "\"version\":\"2.1.0\"");
      check "sarif schema" true (contains out "sarif-schema-2.1.0.json");
      check "ruleId present" true (contains out "\"ruleId\":\"random\""))

let test_lint_baseline () =
  with_lint_tree
    [
      ("lib/core/bad.ml", "let x = Random.int 10\n");
      ("lib/core/bad.mli", "val x : int\n");
    ]
    (fun lib ->
      let bad = Filename.concat (Filename.dirname lib) "lib/core/bad.ml" in
      let baseline = Filename.temp_file "anorad_lint" ".baseline" in
      Fun.protect
        ~finally:(fun () -> Sys.remove baseline)
        (fun () ->
          write_file baseline
            (Printf.sprintf "# grandfathered\nrandom:%s:1\n" bad);
          let code, _ =
            anorad
              (Printf.sprintf "lint --baseline %s %s"
                 (Filename.quote baseline) (Filename.quote lib))
          in
          check_int "baselined finding exits 0" 0 code;
          (* A baseline for a different line does not mask the finding. *)
          write_file baseline (Printf.sprintf "random:%s:99\n" bad);
          let code, _ =
            anorad
              (Printf.sprintf "lint --baseline %s %s"
                 (Filename.quote baseline) (Filename.quote lib))
          in
          check_int "stale baseline still fails" 1 code);
      let code, _ =
        anorad
          (Printf.sprintf "lint --baseline /nonexistent.baseline %s"
             (Filename.quote lib))
      in
      check_int "missing baseline exits 2" 2 code)

(* ------------------------------------------------------------------ *)
(* mc                                                                  *)
(* ------------------------------------------------------------------ *)

let test_mc_verify () =
  with_family "h" 2 (fun path ->
      let code, out = anorad ("mc " ^ Filename.quote path ^ " --replay") in
      check_int "feasible verifies with exit 0" 0 code;
      check "canonical leader" true (contains out "elected node 0");
      check "replay matches" true (contains out "matches bit-for-bit");
      check "invariants hold" true (contains out "model invariants hold"));
  with_family "s" 2 (fun path ->
      let code, out = anorad ("mc " ^ Filename.quote path) in
      check_int "infeasible non-election is exit 0" 0 code;
      check "symmetric terminal state" true (contains out "non-election"))

let test_mc_mutant_violation () =
  with_family "h" 2 (fun path ->
      let code, out =
        anorad ("mc " ^ Filename.quote path ^ " --protocol mutant-greedy-decision")
      in
      check_int "safety violation exits 1" 1 code;
      check "two leaders named" true (contains out "two leaders elected");
      check "counterexample printed" true (contains out "counterexample"));
  with_family "h" 2 (fun path ->
      let code, out =
        anorad ("mc " ^ Filename.quote path ^ " --protocol mutant-early-stop")
      in
      check_int "liveness violation exits 1" 1 code;
      check "no leader reported" true (contains out "no leader"))

let test_mc_usage_and_budget () =
  let code, _ = anorad "mc" in
  check_int "missing CONFIG exits 2" 2 code;
  with_family "h" 2 (fun path ->
      let code, out =
        anorad ("mc " ^ Filename.quote path ^ " --protocol no-such-machine")
      in
      check_int "unknown protocol exits 2" 2 code;
      ignore out;
      let code, out = anorad ("mc " ^ Filename.quote path ^ " --depth 1") in
      check_int "depth budget exits 2" 2 code;
      check "budget named" true (contains out "budget exhausted"))

let test_mc_sarif () =
  with_family "h" 2 (fun path ->
      let code, out =
        anorad
          ("mc " ^ Filename.quote path
         ^ " --protocol mutant-greedy-decision --sarif -")
      in
      check_int "violation exits 1" 1 code;
      check "sarif version" true (contains out "\"version\":\"2.1.0\"");
      check "mc rule id" true (contains out "\"ruleId\":\"mc-two-leaders\"");
      let code, out = anorad ("mc " ^ Filename.quote path ^ " --sarif -") in
      check_int "verified exits 0" 0 code;
      check "empty results" true (contains out "\"results\":[]"))

let test_mc_explore_and_oracle () =
  with_family "s" 2 (fun path ->
      let code, out =
        anorad ("mc " ^ Filename.quote path ^ " --explore --depth 8")
      in
      check_int "explore exit" 0 code;
      check "no separation on infeasible" true (contains out "no separation");
      check "depth exhaustion is conclusive" true
        (contains out "conclusive at depth 8");
      check "footprint reported" true (contains out "visited set");
      (* A tripped state cap is a different, non-conclusive verdict. *)
      let code, out =
        anorad
          ("mc " ^ Filename.quote path
         ^ " --explore --depth 8 --state-cap 20")
      in
      check_int "cap trip exit 2" 2 code;
      check "cap trip named" true (contains out "inconclusive: state cap");
      check "remedy suggested" true (contains out "raise --state-cap"));
  with_family "h" 1 (fun path ->
      let code, out =
        anorad ("mc " ^ Filename.quote path ^ " --explore --depth 12")
      in
      check_int "explore exit" 0 code;
      check "separation found" true (contains out "separation:"));
  let code, out = anorad "mc --oracle 3" in
  check_int "oracle consistent exit 0" 0 code;
  check "agreement reported" true (contains out "agree everywhere")

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

(* A request stream exercising every request kind plus a malformed line;
   responses are newline-delimited JSON on stdout (docs/SERVE.md). *)
let serve_script =
  String.concat ""
    [
      {|{"id":1,"kind":"classify","config":"config 4\ntags 2 0 0 3\n0 1\n1 2\n2 3\n"}|};
      "\n";
      {|{"id":2,"kind":"elect","config":"config 4\ntags 2 0 0 3\n0 1\n1 2\n2 3\n"}|};
      "\n";
      {|{"id":3,"kind":"simulate","config":"config 4\ntags 2 0 0 3\n0 1\n1 2\n2 3\n"}|};
      "\n";
      {|{"id":4,"kind":"mc-check","config":"config 4\ntags 2 0 0 3\n0 1\n1 2\n2 3\n"}|};
      "\n";
      "this is not json\n";
      {|{"id":5,"kind":"stats"}|};
      "\n";
    ]

let with_script f =
  let path = Filename.temp_file "anorad_serve" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path serve_script;
      f path)

let serve_stdio script args =
  run_cmd
    (Printf.sprintf "%s serve --stdio %s < %s" (Filename.quote binary) args
       (Filename.quote script))

let test_serve_stdio () =
  with_script (fun script ->
      let code, out = serve_stdio script "" in
      check_int "serve exit" 0 code;
      let lines = String.split_on_char '\n' (String.trim out) in
      check_int "one response per request" 6 (List.length lines);
      check "classify answered" true (contains out "\"kind\":\"classify\"");
      check "leader elected" true (contains out "\"leader\":1");
      check "malformed line answered" true
        (contains out "\"status\":\"error\"");
      check "stats answered" true (contains out "\"total\":6"))

(* The headline serve invariant end to end: the same request stream is
   byte-identical at every --jobs level and every cache state. *)
let test_serve_determinism () =
  with_script (fun script ->
      let _, base = serve_stdio script "--jobs 1" in
      let _, par = serve_stdio script "--jobs 2" in
      check "jobs 2 = jobs 1" true (String.equal base par);
      let _, cold = serve_stdio script "--cache-entries 0" in
      check "no cache = cached" true (String.equal base cold);
      let _, tiny = serve_stdio script "--max-batch 1" in
      check "batch 1 = batch 64" true (String.equal base tiny))

let test_serve_usage () =
  let code, _ = run_cmd (Filename.quote binary ^ " serve < /dev/null") in
  check_int "no transport exits 2" 2 code;
  let code, _ =
    run_cmd
      (Filename.quote binary ^ " serve --stdio --socket /tmp/x.sock < /dev/null")
  in
  check_int "both transports exits 2" 2 code;
  let code, out = anorad "serve --help=plain" in
  check_int "help exit" 0 code;
  check "documents --stdio" true (contains out "--stdio");
  check "documents --socket" true (contains out "--socket");
  check "documents --cache-entries" true (contains out "--cache-entries")

let test_mc_help () =
  let code, out = anorad "mc --help=plain" in
  check_int "help exit" 0 code;
  check "documents exit 1" true (contains out "counterexample");
  check "documents --explore" true (contains out "--explore");
  check "documents --oracle" true (contains out "--oracle")

let () =
  Alcotest.run "cli"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "family" `Quick test_family_output;
          Alcotest.test_case "classify exits" `Quick test_classify_exit_codes;
          Alcotest.test_case "elect" `Quick test_elect;
          Alcotest.test_case "compile/run-plan" `Quick
            test_compile_run_plan_roundtrip;
          Alcotest.test_case "repair" `Quick test_repair;
          Alcotest.test_case "audit" `Quick test_audit;
          Alcotest.test_case "census" `Quick test_census_cli;
          Alcotest.test_case "--jobs determinism" `Quick test_jobs_cli;
          Alcotest.test_case "catalog" `Quick test_catalog_cli;
          Alcotest.test_case "optimal" `Quick test_optimal_cli;
          Alcotest.test_case "refute" `Quick test_refute_cli;
          Alcotest.test_case "explain --dot" `Quick test_explain_dot_cli;
          Alcotest.test_case "trace" `Quick test_trace_cli;
          Alcotest.test_case "bad input" `Quick test_bad_input;
          Alcotest.test_case "faults" `Quick test_faults_cli;
          Alcotest.test_case "faults --supervise" `Quick
            test_faults_supervise_cli;
          Alcotest.test_case "resilience" `Quick test_resilience_cli;
          Alcotest.test_case "churn" `Quick test_churn_cli;
          Alcotest.test_case "check-trace --plan" `Quick
            test_check_trace_plan_cli;
        ] );
      ( "lint",
        [
          Alcotest.test_case "--help exit codes" `Quick test_lint_help;
          Alcotest.test_case "clean/findings/usage exits" `Quick
            test_lint_clean_and_findings;
          Alcotest.test_case "--deep witness chain" `Quick
            test_lint_deep_witness_chain;
          Alcotest.test_case "--effects escape check" `Quick
            test_lint_effects;
          Alcotest.test_case "effects listing and census" `Quick
            test_effects_cmd;
          Alcotest.test_case "--sarif stdout" `Quick test_lint_sarif_stdout;
          Alcotest.test_case "--baseline" `Quick test_lint_baseline;
        ] );
      ( "serve",
        [
          Alcotest.test_case "stdio round-trip" `Quick test_serve_stdio;
          Alcotest.test_case "stream determinism" `Quick
            test_serve_determinism;
          Alcotest.test_case "usage and help" `Quick test_serve_usage;
        ] );
      ( "mc",
        [
          Alcotest.test_case "verify exits" `Quick test_mc_verify;
          Alcotest.test_case "mutant violations" `Quick
            test_mc_mutant_violation;
          Alcotest.test_case "usage and budget exits" `Quick
            test_mc_usage_and_budget;
          Alcotest.test_case "--sarif" `Quick test_mc_sarif;
          Alcotest.test_case "--explore and --oracle" `Quick
            test_mc_explore_and_oracle;
          Alcotest.test_case "--help" `Quick test_mc_help;
        ] );
    ]
