(* The serve subsystem: JSON codec round-trips, protocol fuzz/negative
   cases (malformed JSON, unknown kinds, oversized configs, mid-stream
   EOF), the canonical cache key, and the headline determinism contract —
   a shuffled-then-replayed request stream yields byte-identical
   per-request responses cold vs warm and at jobs 1/2/4 (docs/SERVE.md). *)

module J = Radio_serve.Json
module P = Radio_serve.Protocol
module Cache = Radio_serve.Cache
module Service = Radio_serve.Service
module Server = Radio_serve.Server
module Can = Election.Canonical
module C = Radio_config.Config
module G = Radio_graph.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let samples =
    [
      {|null|};
      {|true|};
      {|-42|};
      {|"a\nb\"c\\d"|};
      {|[1,2,[],{"x":null}]|};
      {|{"id":7,"kind":"classify","config":"config 1\ntags 0\n"}|};
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e.J.message
      | Ok v -> (
          let printed = J.to_string v in
          match J.parse printed with
          | Error e -> Alcotest.failf "reparse %s: %s" printed e.J.message
          | Ok v' ->
              check_string "print/parse/print fixpoint" printed (J.to_string v')))
    samples

let test_json_unicode () =
  match J.parse {|"\u00e9\ud83d\ude00"|} with
  | Error e -> Alcotest.failf "unicode: %s" e.J.message
  | Ok (J.Str s) ->
      check_string "utf8 bytes" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected string"

let test_json_negative () =
  let cases =
    [
      ("", "unexpected end of input");
      ("{", "end of input");
      ("[1,]", "unexpected character");
      ("1.5", "non-integer");
      ("{\"a\":1,\"a\":2}", "duplicate key");
      ("\"ab", "unterminated string");
      ("\"\\q\"", "invalid escape");
      ("nulL", "expected \"null\"");
      ("{} trailing", "trailing input");
      ("\"\\ud800x\"", "surrogate");
    ]
  in
  List.iter
    (fun (src, frag) ->
      match J.parse src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error e ->
          check (Printf.sprintf "%S -> %s (got %s)" src frag e.J.message) true
            (contains e.J.message frag);
          check "column positive" true (e.J.column >= 1))
    cases

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check "a present" true (Cache.find c "a" = Some 1);
  (* "a" is now most recent; adding "c" evicts "b" *)
  Cache.add c "c" 3;
  check "b evicted" true (Cache.find c "b" = None);
  check "a kept" true (Cache.find c "a" = Some 1);
  check "c kept" true (Cache.find c "c" = Some 3);
  check_int "evictions" 1 (Cache.evictions c);
  check_int "length" 2 (Cache.length c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 in
  Cache.add c "a" 1;
  check "disabled cache never hits" true (Cache.find c "a" = None);
  check_int "no entries" 0 (Cache.length c)

(* ------------------------------------------------------------------ *)
(* Canonical cache key                                                 *)
(* ------------------------------------------------------------------ *)

(* Deterministic xorshift so the test needs no global RNG state. *)
let rng seed =
  let s = ref (seed lor 1) in
  fun bound ->
    s := !s lxor (!s lsl 13);
    s := !s lxor (!s lsr 7);
    s := !s lxor (!s lsl 17);
    abs !s mod bound

let random_perm rand n =
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = rand (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let test_cache_key_iso_invariant () =
  let rand = rng 0x5eed in
  let base =
    [
      C.create (G.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]) [| 2; 0; 0; 3 |];
      C.create (G.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]) [| 0; 0; 1; 1; 2 |];
      C.create (G.of_edges 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (0, 3) ]) [| 1; 0; 0; 1; 0; 0 |];
    ]
  in
  List.iter
    (fun c ->
      let key = Can.cache_key c in
      for _ = 1 to 20 do
        let p = random_perm rand (C.size c) in
        let c' = C.relabel c p in
        check_string "cache_key invariant under relabeling" key
          (Can.cache_key c')
      done)
    base;
  (* and the canonical form is a fixpoint: canon of canon = canon *)
  List.iter
    (fun c ->
      let canon, _ = Can.canonical_form c in
      let canon2, perm2 = Can.canonical_form canon in
      check "canonical form is a fixpoint" true (C.equal canon canon2);
      (* [perm2] need not be the identity when the canonical form has
         non-trivial automorphisms (e.g. a cycle); it must still be a
         permutation, and relabeling by it must leave the form fixed. *)
      let n = C.size canon in
      let seen = Array.make n false in
      Array.iter (fun p -> seen.(p) <- true) perm2;
      Array.iteri
        (fun i s -> check ("fixpoint perm covers " ^ string_of_int i) true s)
        seen;
      check_string "fixpoint perm is an automorphism" (Can.raw_key canon)
        (Can.raw_key (C.relabel canon perm2)))
    base

let test_cache_key_separates () =
  let a = C.create (G.of_edges 3 [ (0, 1); (1, 2) ]) [| 0; 0; 1 |] in
  let b = C.create (G.of_edges 3 [ (0, 1); (1, 2) ]) [| 0; 1; 0 |] in
  check "different configs, different keys" true
    (Can.cache_key a <> Can.cache_key b)

(* ------------------------------------------------------------------ *)
(* Protocol negatives                                                  *)
(* ------------------------------------------------------------------ *)

let err_of line =
  match (P.parse line).P.request with
  | Error e -> e
  | Ok _ -> Alcotest.failf "accepted %S" line

let test_protocol_negative () =
  let e = err_of "{\"kind\":\"warble\"}" in
  check "unknown kind listed" true (contains e.P.message "unknown request kind");
  check "known kinds listed" true (contains e.P.message "mc-check");
  let e = err_of "{\"kind\":\"classify\"}" in
  check "missing config" true (contains e.P.message "missing field \"config\"");
  let e = err_of "{\"kind\":\"classify\",\"config\":\"config 0\\n\"}" in
  check "invalid config" true (contains e.P.message "invalid config");
  let e = err_of "{\"kind\":\"classify\",\"config\":\"config 1\\ntags 0\\n\",\"depth\":3}" in
  check "field rejected per kind" true (contains e.P.message "unknown field");
  let e = err_of "{\"kind\":\"elect\",\"config\":\"config 1\\ntags 0\\n\",\"max_rounds\":0}" in
  check "nonpositive max_rounds" true (contains e.P.message "must be positive");
  let e = err_of "{\"kind\":\"mc-check\",\"config\":\"config 1\\ntags 0\\n\",\"protocol\":\"nope\"}" in
  check "unknown protocol" true (contains e.P.message "unknown protocol");
  let e = err_of "not json at all" in
  check "json error positioned" true (e.P.column <> None);
  let big = String.make (P.max_config_bytes + 1) 'x' in
  let e = err_of (Printf.sprintf "{\"kind\":\"classify\",\"config\":%s}" (J.to_string (J.Str big))) in
  check "oversized config" true (contains e.P.message "config too large")

let test_protocol_id_echo () =
  let p = P.parse "{\"id\":\"req-1\",\"kind\":\"stats\"}" in
  check "id echoed" true (p.P.id = J.Str "req-1");
  check "stats parsed" true (match p.P.request with Ok P.Stats -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Service / server determinism                                        *)
(* ------------------------------------------------------------------ *)

let family_h2 = "config 4\ntags 2 0 0 3\n0 1\n1 2\n2 3\n"
let triangle = "config 3\ntags 0 0 0\n0 1\n1 2\n2 0\n"  (* infeasible *)
let star = "config 4\ntags 1 0 0 0\n0 1\n0 2\n0 3\n"
let h2_reversed = "config 4\ntags 3 0 0 2\n0 1\n1 2\n2 3\n"

let quote s = J.to_string (J.Str s)

let request_lines =
  [
    Printf.sprintf "{\"id\":1,\"kind\":\"classify\",\"config\":%s}" (quote family_h2);
    Printf.sprintf "{\"id\":2,\"kind\":\"classify\",\"config\":%s}" (quote triangle);
    Printf.sprintf "{\"id\":3,\"kind\":\"elect\",\"config\":%s}" (quote family_h2);
    Printf.sprintf "{\"id\":4,\"kind\":\"simulate\",\"config\":%s,\"max_rounds\":500}" (quote star);
    Printf.sprintf "{\"id\":5,\"kind\":\"mc-check\",\"config\":%s}" (quote family_h2);
    Printf.sprintf "{\"id\":6,\"kind\":\"classify\",\"config\":%s}" (quote h2_reversed);
    Printf.sprintf "{\"id\":7,\"kind\":\"elect\",\"config\":%s}" (quote star);
    "{\"id\":8,\"kind\":\"classify\"}";
    "broken json";
    Printf.sprintf "{\"id\":9,\"kind\":\"simulate\",\"config\":%s}" (quote triangle);
  ]

let opts ?(cache = 64) ?(jobs = 1) ?(max_batch = 64) () =
  {
    Server.default_options with
    Server.jobs = Some jobs;
    cache_entries = cache;
    max_batch;
  }

let serve ?service ?(cache = 64) ?(jobs = 1) ?(max_batch = 64) lines =
  Server.run_string ?service (opts ~cache ~jobs ~max_batch ())
    (String.concat "\n" lines ^ "\n")

(* Responses paired back to their request line, so streams can be compared
   per-request even after shuffling.  Distinct request lines in
   [request_lines] have distinct ids, and responses preserve order. *)
let response_map lines output =
  let responses = String.split_on_char '\n' (String.trim output) in
  check_int "one response per request" (List.length lines) (List.length responses);
  List.combine lines responses

let test_shuffled_replay_deterministic () =
  let rand = rng 0xCAFE in
  let baseline = response_map request_lines (serve request_lines) in
  let expect line =
    match List.assoc_opt line baseline with
    | Some r -> r
    | None -> Alcotest.fail "request missing from baseline"
  in
  let shuffle l =
    let a = Array.of_list l in
    let p = random_perm rand (Array.length a) in
    Array.to_list (Array.map (fun i -> a.(i)) p)
  in
  List.iter
    (fun jobs ->
      List.iter
        (fun cache ->
          (* shuffled stream, then the original replayed on the same warm
             service: every response must equal the cold baseline's *)
          let service = Service.create ~cache_entries:cache in
          let shuffled = shuffle request_lines in
          let first = serve ~service ~cache ~jobs shuffled in
          List.iter
            (fun (line, resp) ->
              check_string
                (Printf.sprintf "shuffled (jobs=%d cache=%d)" jobs cache)
                (expect line) resp)
            (response_map shuffled first);
          let second = serve ~service ~cache ~jobs request_lines in
          List.iter
            (fun (line, resp) ->
              check_string
                (Printf.sprintf "warm replay (jobs=%d cache=%d)" jobs cache)
                (expect line) resp)
            (response_map request_lines second))
        [ 0; 64 ])
    [ 1; 2; 4 ]

let test_batch_size_invariant () =
  let baseline = serve ~max_batch:1 request_lines in
  List.iter
    (fun max_batch ->
      check_string
        (Printf.sprintf "max_batch=%d" max_batch)
        baseline
        (serve ~max_batch request_lines))
    [ 2; 3; 64 ]

let test_iso_requests_share_cache () =
  let service = Service.create ~cache_entries:64 in
  let lines =
    [
      Printf.sprintf "{\"id\":1,\"kind\":\"classify\",\"config\":%s}" (quote family_h2);
      Printf.sprintf "{\"id\":2,\"kind\":\"classify\",\"config\":%s}" (quote h2_reversed);
    ]
  in
  ignore (serve ~service lines);
  let tel = Service.telemetry service in
  check_int "isomorphic request hits the same entry" 1 tel.Service.cache_hits;
  check_int "one analysis computed" 1 tel.Service.cache_misses;
  check_int "one cache entry" 1 tel.Service.cache_entries

let test_iso_equivariant_leader () =
  (* h2 reversed is h2 relabeled by v -> 3 - v: the elected node must be
     the same physical node, i.e. ids map through the relabeling. *)
  let leader_of config =
    let out =
      serve [ Printf.sprintf "{\"id\":0,\"kind\":\"classify\",\"config\":%s}" (quote config) ]
    in
    match J.parse (String.trim out) with
    | Ok o -> (
        match Option.bind (J.member "result" o) (J.member "leader") with
        | Some (J.Int v) -> v
        | _ -> Alcotest.fail "no leader in response")
    | Error _ -> Alcotest.fail "unparseable response"
  in
  let a = leader_of family_h2 in
  let b = leader_of h2_reversed in
  check_int "leader maps through the relabeling" (3 - a) b

let test_stats_prefix_exact () =
  let lines =
    [
      Printf.sprintf "{\"id\":1,\"kind\":\"classify\",\"config\":%s}" (quote family_h2);
      "junk";
      "{\"id\":2,\"kind\":\"stats\"}";
      Printf.sprintf "{\"id\":3,\"kind\":\"classify\",\"config\":%s}" (quote family_h2);
      "{\"id\":4,\"kind\":\"stats\"}";
    ]
  in
  let out = serve lines in
  let stats_results =
    List.filter_map
      (fun line ->
        match J.parse line with
        | Ok o when J.member "kind" o = Some (J.Str "stats") ->
            J.member "result" o
        | _ -> None)
      (String.split_on_char '\n' (String.trim out))
  in
  match stats_results with
  | [ first; second ] ->
      check "first stats counts its prefix" true
        (J.member "total" first = Some (J.Int 3));
      check "second stats counts the full stream" true
        (J.member "total" second = Some (J.Int 5));
      check "errors counted" true (J.member "errors" first = Some (J.Int 1))
  | _ -> Alcotest.fail "expected two stats responses"

let test_eof_mid_line () =
  (* final line missing its newline is still answered; the response stream
     stays well-formed *)
  let input =
    Printf.sprintf "{\"id\":1,\"kind\":\"classify\",\"config\":%s}\n{\"id\":2,\"kind\":\"sta"
      (quote family_h2)
  in
  let out = Server.run_string (opts ()) input in
  let lines = String.split_on_char '\n' (String.trim out) in
  check_int "two responses" 2 (List.length lines);
  check "truncated request answered with an error" true
    (contains (List.nth lines 1) "\"status\":\"error\"")

let test_mc_check_agrees_with_classify () =
  (* canonical routing: the leader reported by classify, elect and
     mc-check must be the same node (docs/SERVE.md) *)
  List.iter
    (fun config ->
      let out =
        serve
          [
            Printf.sprintf "{\"id\":1,\"kind\":\"classify\",\"config\":%s}" (quote config);
            Printf.sprintf "{\"id\":2,\"kind\":\"elect\",\"config\":%s}" (quote config);
            Printf.sprintf "{\"id\":3,\"kind\":\"mc-check\",\"config\":%s}" (quote config);
          ]
      in
      let leaders =
        List.filter_map
          (fun line ->
            match J.parse line with
            | Ok o -> (
                let r = J.member "result" o in
                match Option.bind r (J.member "leader") with
                | Some (J.Int v) -> Some v
                | _ -> (
                    match
                      Option.bind
                        (Option.bind r (J.member "verdict"))
                        (J.member "leader")
                    with
                    | Some (J.Int v) -> Some v
                    | _ -> None))
            | Error _ -> None)
          (String.split_on_char '\n' (String.trim out))
      in
      match leaders with
      | [ a; b; c ] ->
          check_int "classify = elect" a b;
          check_int "classify = mc-check" a c
      | _ -> Alcotest.fail "expected three leaders")
    [ family_h2; h2_reversed; star ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode" `Quick test_json_unicode;
          Alcotest.test_case "negative" `Quick test_json_negative;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "capacity 0 disables" `Quick test_cache_disabled;
          Alcotest.test_case "key iso-invariant" `Quick
            test_cache_key_iso_invariant;
          Alcotest.test_case "key separates" `Quick test_cache_key_separates;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "negative" `Quick test_protocol_negative;
          Alcotest.test_case "id echo" `Quick test_protocol_id_echo;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "shuffled replay, jobs x cache" `Slow
            test_shuffled_replay_deterministic;
          Alcotest.test_case "batch size invariant" `Quick
            test_batch_size_invariant;
          Alcotest.test_case "iso requests share cache" `Quick
            test_iso_requests_share_cache;
          Alcotest.test_case "iso-equivariant leader" `Quick
            test_iso_equivariant_leader;
          Alcotest.test_case "stats prefix exact" `Quick test_stats_prefix_exact;
          Alcotest.test_case "eof mid-line" `Quick test_eof_mid_line;
          Alcotest.test_case "mc-check agrees with classify" `Slow
            test_mc_check_agrees_with_classify;
        ] );
    ]
