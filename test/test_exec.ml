(* The execution subsystem: Pool scheduling/determinism/telemetry, the
   mergeable interner, and the parallel == sequential byte-equality
   contract for every wired sweep (census, oracle, resilience, optimal)
   at jobs in {1, 2, 4}. *)

open Radio_exec

let jobs_levels = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool units                                                          *)
(* ------------------------------------------------------------------ *)

let test_empty_batch () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let hits = ref 0 in
          Pool.run_batch pool
            ~f:(fun _ _ -> incr hits)
            ~commit:(fun _ () -> ())
            [||];
          Alcotest.(check int) "no tasks ran" 0 !hits;
          Alcotest.(check (list int)) "map of empty" [] (Pool.map pool ~f:succ [])))
    jobs_levels

let test_one_task () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            "singleton map" [ 42 ]
            (Pool.map pool ~f:(fun x -> x * 2) [ 21 ])))
    jobs_levels

let test_map_order () =
  let xs = List.init 257 (fun i -> i) in
  let expect = List.map (fun i -> (i * 7) mod 13) xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check (list int))
            (Printf.sprintf "map order, jobs=%d" jobs)
            expect
            (Pool.map pool ~f:(fun i -> (i * 7) mod 13) xs)))
    jobs_levels

let test_map_reduce_matches_fold () =
  let xs = List.init 100 (fun i -> i) in
  let f x = Printf.sprintf "<%d>" (x * x) in
  let seq = List.fold_left (fun acc x -> acc ^ f x) "" xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let par = Pool.map_reduce pool ~f ~init:"" ~merge:( ^ ) xs in
          Alcotest.(check string)
            (Printf.sprintf "fold equality, jobs=%d" jobs)
            seq par))
    jobs_levels

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      let committed = ref [] in
      let raised =
        try
          Pool.run_batch pool ~chunk:1
            ~f:(fun i x -> if i = 5 then raise (Boom x) else x * 10)
            ~commit:(fun i y -> committed := (i, y) :: !committed)
            (Array.init 12 (fun i -> i));
          None
        with Boom x -> Some x
      in
      Alcotest.(check (option int))
        (Printf.sprintf "exception surfaced, jobs=%d" jobs)
        (Some 5) raised;
      (* the exact sequential prefix was committed, in order *)
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "prefix committed, jobs=%d" jobs)
        [ (0, 0); (1, 10); (2, 20); (3, 30); (4, 40) ]
        (List.rev !committed);
      (* the pool survives the exception and shuts down cleanly *)
      Alcotest.(check (list int))
        "pool usable after exception" [ 2; 4; 6 ]
        (Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2; 3 ]);
      Pool.shutdown pool;
      Pool.shutdown pool (* idempotent *);
      Alcotest.(check (list int))
        "post-shutdown degrades to caller" [ 1; 2 ]
        (Pool.map pool ~f:succ [ 0; 1 ]))
    jobs_levels

let test_stats_monotone () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let snapshots =
        List.map
          (fun n ->
            ignore (Pool.map pool ~f:succ (List.init n (fun i -> i)));
            Pool.stats pool)
          [ 10; 100; 1000 ]
      in
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            let open Pool in
            Alcotest.(check bool) "tasks monotone" true (b.tasks >= a.tasks);
            Alcotest.(check bool) "steals monotone" true (b.steals >= a.steals);
            Alcotest.(check bool)
              "depth monotone" true
              (b.max_queue_depth >= a.max_queue_depth);
            Array.iteri
              (fun i bi ->
                Alcotest.(check bool) "busy monotone" true (bi >= a.busy.(i)))
              b.busy;
            pairs rest
        | _ -> ()
      in
      pairs snapshots;
      let s = Pool.stats pool in
      Alcotest.(check int) "jobs reported" 2 s.Pool.jobs;
      Alcotest.(check int) "all elements counted" 1110 s.Pool.tasks)

(* Amortized one-pool-per-process reuse (ROADMAP item 5, docs/PARALLEL.md):
   a pool stays alive and correct across many batches, shutdown is
   observable through [is_alive], and submitting after shutdown degrades
   to the caller-executes sequential path with identical results. *)
let test_amortized_reuse () =
  let expected n = List.init n (fun i -> (i * i) + 1) in
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check bool) "alive after create" true (Pool.is_alive pool);
      for round = 1 to 50 do
        let n = 1 + ((round * 7) mod 40) in
        let got = Pool.map pool ~f:(fun i -> (i * i) + 1) (List.init n Fun.id) in
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d correct" round)
          (expected n) got;
        Alcotest.(check bool)
          (Printf.sprintf "alive after batch %d" round)
          true (Pool.is_alive pool)
      done;
      let before = Pool.stats pool in
      Alcotest.(check bool) "work was counted" true (before.Pool.tasks > 0))

let test_reuse_after_shutdown () =
  let pool = Pool.create ~jobs:3 () in
  Alcotest.(check bool) "alive" true (Pool.is_alive pool);
  let a = Pool.map pool ~f:succ (List.init 100 Fun.id) in
  Pool.shutdown pool;
  Alcotest.(check bool) "dead after shutdown" false (Pool.is_alive pool);
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.(check bool) "still dead" false (Pool.is_alive pool);
  (* the well-specified degraded path: caller executes, same results *)
  let b = Pool.map pool ~f:succ (List.init 100 Fun.id) in
  Alcotest.(check (list int)) "post-shutdown batch = live batch" a b;
  let s = Pool.stats pool in
  Alcotest.(check int) "degraded work still counted" 200 s.Pool.tasks

let test_with_pool_kills () =
  let escaped = ref None in
  Pool.with_pool ~jobs:2 (fun pool -> escaped := Some pool);
  match !escaped with
  | None -> Alcotest.fail "with_pool did not run"
  | Some pool ->
      Alcotest.(check bool)
        "with_pool shuts its pool down" false (Pool.is_alive pool)

let test_jobs_resolution () =
  let pool = Pool.create ~jobs:7 () in
  Alcotest.(check int) "explicit jobs" 7 (Pool.jobs pool);
  Pool.shutdown pool;
  let pool = Pool.create ~jobs:0 () in
  Alcotest.(check int) "clamped to 1" 1 (Pool.jobs pool);
  Pool.shutdown pool;
  Unix.putenv "ANORAD_JOBS" "3";
  let pool = Pool.create () in
  Alcotest.(check int) "ANORAD_JOBS honoured" 3 (Pool.jobs pool);
  Pool.shutdown pool;
  Unix.putenv "ANORAD_JOBS" "";
  let pool = Pool.create () in
  Alcotest.(check bool) "garbage env falls back" true (Pool.jobs pool >= 1);
  Pool.shutdown pool

let test_busy_work () =
  (* a batch heavy enough that workers actually run tasks; checks the
     result is still deterministic and telemetry counts every element *)
  let n = 2000 in
  let f i =
    let acc = ref 0 in
    for k = 1 to 200 do
      acc := (!acc + (i * k)) mod 9973
    done;
    !acc
  in
  let expect = Array.init n f in
  Pool.with_pool ~jobs:4 (fun pool ->
      let got = Pool.map_array pool ~f (Array.init n (fun i -> i)) in
      Alcotest.(check (array int)) "heavy batch deterministic" expect got;
      let s = Pool.stats pool in
      Alcotest.(check int) "telemetry counted all" n s.Pool.tasks;
      Alcotest.(check bool)
        "busy time recorded" true
        (Array.fold_left ( +. ) 0. s.Pool.busy > 0.))

(* ------------------------------------------------------------------ *)
(* Intern                                                              *)
(* ------------------------------------------------------------------ *)

let test_intern_sequential () =
  let t = Intern.create ~first:1 () in
  Alcotest.(check int) "first id" 1 (Intern.get t "a");
  Alcotest.(check int) "second id" 2 (Intern.get t "b");
  Alcotest.(check int) "hit" 1 (Intern.get t "a");
  Alcotest.(check int) "size" 2 (Intern.size t);
  Alcotest.(check int) "next" 3 (Intern.next_id t);
  Alcotest.(check (option int)) "find hit" (Some 2) (Intern.find t "b");
  Alcotest.(check (option int)) "find miss" None (Intern.find t "z")

let test_intern_commit_matches_sequential () =
  (* keys embed ids (parent, label) exactly like Optimal's history keys;
     two "tasks" intern overlapping key streams, committed in submission
     order, and the resulting global ids must equal a sequential run *)
  let streams =
    [
      [ (0, "x"); (0, "y"); (1, "x") ];
      [ (0, "y"); (0, "z"); (2, "w") ];
      [ (1, "x"); (4, "q") ];
    ]
  in
  (* sequential reference *)
  let seq = Intern.create ~first:1 () in
  let seq_ids =
    List.map
      (List.map (fun (p, l) -> Intern.get seq (p, l)))
      (* sequential interning resolves parents against already-final ids *)
      streams
  in
  (* parallel-shaped run: locals filled "concurrently", committed in order *)
  let par = Intern.create ~first:1 () in
  let locals = List.map (fun _ -> Intern.local par) streams in
  let local_ids =
    List.map2
      (fun l stream -> List.map (fun k -> Intern.get_local l k) stream)
      locals streams
  in
  let remap resolve (p, l) = (resolve p, l) in
  let par_ids =
    List.map2
      (fun l ids ->
        let resolve = Intern.commit par ~remap l in
        List.map resolve ids)
      locals local_ids
  in
  Alcotest.(check (list (list int))) "ids bit-identical" seq_ids par_ids;
  Alcotest.(check int) "same table size" (Intern.size seq) (Intern.size par)

(* ------------------------------------------------------------------ *)
(* Parallel == sequential byte equality for the wired sweeps           *)
(* ------------------------------------------------------------------ *)

let with_jobs_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let check_bytes_across_jobs name render =
  let reference = with_jobs_pool 1 render in
  List.iter
    (fun jobs ->
      let got = with_jobs_pool jobs render in
      Alcotest.(check string) (Printf.sprintf "%s, jobs=%d" name jobs) reference got)
    (List.tl jobs_levels)

let test_census_bytes () =
  check_bytes_across_jobs "census report" (fun pool ->
      let report = Election.Census.run ~pool ~max_n:3 ~max_span:1 () in
      Format.asprintf "%a" Election.Census.pp_report report)

let test_oracle_bytes () =
  check_bytes_across_jobs "oracle report" (fun pool ->
      let r = Radio_mc.Oracle.run ~pool ~max_n:3 () in
      Format.asprintf "%a" Radio_mc.Oracle.pp_report r)

let catalog_config name =
  match Radio_config.Catalog.find name with
  | Some e -> e.Radio_config.Catalog.config
  | None -> Alcotest.fail ("catalog entry missing: " ^ name)

let test_resilience_bytes () =
  let config = catalog_config "h2" in
  check_bytes_across_jobs "resilience csv+table" (fun pool ->
      let sweep =
        Radio_faults.Resilience.crash_sweep ~pool ~trials:10 ~name:"h2" config
      in
      Radio_faults.Resilience.to_csv sweep
      ^ "\n"
      ^ Format.asprintf "%a" Radio_faults.Resilience.pp sweep)

let test_optimal_bytes () =
  check_bytes_across_jobs "optimal breaking time" (fun pool ->
      let outcomes =
        List.map
          (fun name ->
            let c = catalog_config name in
            match Election.Optimal.breaking_time ~pool ~horizon:8 c with
            | Election.Optimal.Broken_at r ->
                Printf.sprintf "%s: broken at %d" name r
            | Election.Optimal.Never -> name ^ ": never"
            | Election.Optimal.Not_within_horizon -> name ^ ": horizon"
            | Election.Optimal.Search_budget_exhausted -> name ^ ": budget")
          [ "two-cells"; "symmetric-pair"; "h2" ]
      in
      String.concat "\n" outcomes)

(* ------------------------------------------------------------------ *)
(* Bench E20 JSON                                                      *)
(* ------------------------------------------------------------------ *)

(* Minimal structural JSON validation: balanced delimiters outside
   strings, non-empty, and the keys E20 promises. *)
let json_well_formed s =
  let depth = ref 0 and ok = ref true and in_str = ref false in
  let escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && (not !in_str) && String.length (String.trim s) > 0

let test_bench_parallel_json () =
  let bench =
    Filename.concat (Filename.dirname Sys.executable_name) "../bench/main.exe"
  in
  let rc = Sys.command (Filename.quote bench ^ " par --quick > /dev/null 2>&1") in
  Alcotest.(check int) "bench par --quick exits 0" 0 rc;
  let json =
    In_channel.with_open_text "BENCH_parallel.json" In_channel.input_all
  in
  Alcotest.(check bool) "well-formed json" true (json_well_formed json);
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "key %s present" key)
        true
        (let re = Printf.sprintf "\"%s\"" key in
         let rec search i =
           i + String.length re <= String.length json
           && (String.sub json i (String.length re) = re || search (i + 1))
         in
         search 0))
    [ "workload"; "jobs"; "seq_s"; "par_s"; "speedup"; "equal" ]

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "one task" `Quick test_one_task;
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "map_reduce = fold" `Quick
            test_map_reduce_matches_fold;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "stats monotone" `Quick test_stats_monotone;
          Alcotest.test_case "amortized reuse" `Quick test_amortized_reuse;
          Alcotest.test_case "reuse after shutdown" `Quick
            test_reuse_after_shutdown;
          Alcotest.test_case "with_pool shuts down" `Quick test_with_pool_kills;
          Alcotest.test_case "jobs resolution" `Quick test_jobs_resolution;
          Alcotest.test_case "heavy batch" `Quick test_busy_work;
        ] );
      ( "intern",
        [
          Alcotest.test_case "sequential" `Quick test_intern_sequential;
          Alcotest.test_case "commit = sequential ids" `Quick
            test_intern_commit_matches_sequential;
        ] );
      ( "parallel-equals-sequential",
        [
          Alcotest.test_case "census bytes" `Slow test_census_bytes;
          Alcotest.test_case "oracle bytes" `Slow test_oracle_bytes;
          Alcotest.test_case "resilience bytes" `Slow test_resilience_bytes;
          Alcotest.test_case "optimal bytes" `Slow test_optimal_bytes;
        ] );
      ( "bench",
        [
          Alcotest.test_case "E20 json" `Slow test_bench_parallel_json;
        ] );
    ]
