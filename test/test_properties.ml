(* Property-based cross-validation of the whole stack on random
   configurations.  These are the strongest checks in the repository: they
   tie the centralized combinatorial Classifier to the distributed
   simulation through the equivalences the paper proves (Lemmas 3.8-3.11),
   and the fast classifier to the literal one. *)

module C = Radio_config.Config
module RC = Radio_config.Random_config
module F = Radio_config.Families
module Gen = Radio_graph.Gen
module H = Radio_drip.History
module P = Radio_drip.Protocol
module Patient = Radio_drip.Patient
module Engine = Radio_sim.Engine
module Runner = Radio_sim.Runner
module Cl = Election.Classifier
module Fast = Election.Fast_classifier
module Can = Election.Canonical
module Fe = Election.Feasibility
module Label = Election.Label

(* Random configuration generator shared by all properties: connected
   G(n,p) or random tree, small n so thousands of cases stay fast. *)
let gen_config =
  QCheck.make
    ~print:(fun (kind, n, span, seed) ->
      Printf.sprintf "%s n=%d span=%d seed=%d"
        (if kind then "gnp" else "tree")
        n span seed)
    QCheck.Gen.(
      quad bool (int_range 1 16) (int_range 0 4) (int_range 0 1_000_000))

let build (kind, n, span, seed) =
  let st = Random.State.make [| seed |] in
  if kind then RC.connected_gnp st ~n ~p:0.35 ~span
  else RC.random_tree st ~n ~span

(* Every engine outcome this suite produces is additionally vetted by the
   model-conformance checker (lib/lint): beyond the property under test,
   the run itself must satisfy every invariant of engine.mli — history
   lengths, wake-up and collision semantics, ledgers, the anonymity law —
   and the protocol must replay purely into fresh instances. *)
let assert_valid ?protocol o =
  match Radio_lint.Invariants.validate ?protocol o with
  | [] -> ()
  | vs ->
      Alcotest.failf "model invariants violated:@.%a" Radio_lint.Report.pp vs

let checked_run ?max_rounds ?record_trace proto config =
  let o = Engine.run ?max_rounds ?record_trace proto config in
  assert_valid ~protocol:proto o;
  o

let runs_agree r1 r2 =
  (match (r1.Cl.verdict, r2.Cl.verdict) with
  | Cl.Infeasible, Cl.Infeasible -> true
  | Cl.Feasible { singleton_class = a }, Cl.Feasible { singleton_class = b } ->
      a = b
  | _ -> false)
  && List.for_all2
       (fun i1 i2 ->
         i1.Cl.new_class = i2.Cl.new_class && i1.Cl.reps = i2.Cl.reps)
       r1.Cl.iterations r2.Cl.iterations

(* P1: fast classifier == literal classifier, in full detail. *)
let prop_fast_equals_reference =
  QCheck.Test.make ~name:"fast classifier == literal classifier" ~count:800
    gen_config (fun params ->
      let config = build params in
      runs_agree (Cl.classify config) (Fast.classify config))

(* P2 (Theorem 3.15): on feasible configurations the dedicated algorithm
   elects exactly the classifier's predicted leader in the simulator, and
   every node stops in local round r_T + 1. *)
let prop_feasible_elects_predicted_leader =
  QCheck.Test.make ~name:"feasible => dedicated algorithm elects predicted leader"
    ~count:500 gen_config (fun params ->
      let config = build params in
      let a = Fe.analyze config in
      match Fe.verify_by_simulation ~max_rounds:3_000_000 a with
      | None -> QCheck.assume_fail () (* infeasible: checked in P3 *)
      | Some r ->
          Runner.elects_unique_leader r
          && r.Runner.leader = a.Fe.leader
          && Array.for_all
               (fun d -> d = a.Fe.election_local_rounds)
               r.Runner.outcome.Engine.done_local)

(* P3 (Lemma 3.9): the history partition after executing the canonical DRIP
   equals the classifier's final partition - feasible or not. *)
let prop_history_partition_matches =
  QCheck.Test.make ~name:"history classes == classifier partition (Lemma 3.9)"
    ~count:500 gen_config (fun params ->
      let config = build params in
      let run = Cl.classify config in
      let plan = Can.plan_of_run run in
      let o = checked_run ~max_rounds:3_000_000 (Can.protocol plan) config in
      if not o.Engine.all_terminated then false
      else begin
        let hc = Runner.history_classes o in
        let final = (Cl.last_iteration run).Cl.new_class in
        let n = C.size config in
        let ok = ref true in
        for v = 0 to n - 1 do
          for w = v + 1 to n - 1 do
            if hc.(v) = hc.(w) <> (final.(v) = final.(w)) then ok := false
          done
        done;
        !ok
      end)

(* P4 (Lemma 3.6): the canonical DRIP is patient: all wake-ups spontaneous
   and no transmission in global rounds 0..sigma. *)
let prop_canonical_patient =
  QCheck.Test.make ~name:"canonical DRIP is patient (Lemma 3.6)" ~count:500
    gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let o = checked_run ~max_rounds:3_000_000 (Can.protocol plan) config in
      Array.for_all not o.Engine.forced
      &&
      match o.Engine.first_transmission with
      | Some (r, _) -> r > C.span config
      | None -> C.size config = 1)

(* P5: the schedule length respects the explicit O(n^2 sigma) constant
   (Lemma 3.10). *)
let prop_schedule_bound =
  QCheck.Test.make ~name:"schedule within explicit O(n^2 sigma) bound"
    ~count:800 gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      Can.local_termination_round plan
      <= Can.upper_bound_rounds ~n:(C.size config) ~sigma:(C.span config))

(* P6: feasibility is invariant under node relabelling, and the predicted
   leader maps through the permutation. *)
let prop_relabel_invariance =
  QCheck.Test.make ~name:"feasibility invariant under relabelling" ~count:200
    gen_config (fun params ->
      let kind, n, _, seed = params in
      ignore kind;
      let config = build params in
      let st = Random.State.make [| seed + 1 |] in
      let perm = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let a = Fe.analyze config in
      let a' = Fe.analyze (C.relabel config perm) in
      a.Fe.feasible = a'.Fe.feasible
      &&
      match (a.Fe.leader, a'.Fe.leader) with
      | None, None -> true
      | Some v, Some v' ->
          (* Both leaders have globally unique histories; relabelling maps
             unique-history nodes onto each other, though the *smallest
             singleton class* can differ in numbering: accept either exact
             mapping or both being legitimate singleton members. *)
          v' = perm.(v)
          || (let final = (Cl.last_iteration a'.Fe.run).Cl.new_class in
              let sizes = Hashtbl.create 8 in
              Array.iter
                (fun c ->
                  Hashtbl.replace sizes c
                    (1 + Option.value ~default:0 (Hashtbl.find_opt sizes c)))
                final;
              Hashtbl.find sizes final.(v') = 1
              && Hashtbl.find sizes final.(perm.(v)) = 1)
      | _ -> false)

(* P7: shifting all tags by a constant changes nothing (Section 2.1). *)
let prop_shift_invariance =
  QCheck.Test.make ~name:"verdict invariant under global tag shift" ~count:200
    gen_config (fun params ->
      let config = build params in
      let shifted =
        C.create ~normalize:false (C.graph config)
          (Array.map (fun t -> t + 5) (C.tags config))
      in
      let a = Fe.analyze config in
      let a' = Fe.analyze shifted in
      a.Fe.feasible = a'.Fe.feasible && a.Fe.leader = a'.Fe.leader)

(* P8: a patient wrap of any protocol never transmits in rounds 0..sigma. *)
let prop_patient_wrap_is_patient =
  QCheck.Test.make ~name:"patient transform is patient (Lemma 3.12 Claim 1)"
    ~count:200 gen_config (fun params ->
      let config = build params in
      let sigma = C.span config in
      let proto = Patient.make ~sigma (P.beacon ~delay:1 ()) in
      let o = checked_run ~max_rounds:10_000 proto config in
      (match o.Engine.first_transmission with
      | Some (r, _) -> r > sigma
      | None -> true)
      && Array.for_all not o.Engine.forced)

(* P9 (Observation 3.2 / Corollary 3.3): refinement along iterations. *)
let prop_refinement_monotone =
  QCheck.Test.make ~name:"class counts non-decreasing, separation persists"
    ~count:300 gen_config (fun params ->
      let config = build params in
      let run = Cl.classify config in
      let ok = ref true in
      let prev_count = ref 1 in
      List.iter
        (fun it ->
          if it.Cl.num_classes < !prev_count then ok := false;
          prev_count := it.Cl.num_classes;
          let n = Array.length it.Cl.new_class in
          for v = 0 to n - 1 do
            for w = v + 1 to n - 1 do
              if
                it.Cl.old_class.(v) <> it.Cl.old_class.(w)
                && it.Cl.new_class.(v) = it.Cl.new_class.(w)
              then ok := false
            done
          done)
        run.Cl.iterations;
      !ok)

(* P10: the pure-function transcription of the canonical DRIP (via
   block_trace replay) agrees with what the stateful instance actually did:
   transmission rounds recovered from the history coincide with the trace
   recorded by the engine. *)
let prop_replay_consistency =
  QCheck.Test.make ~name:"history replay recovers actual transmission blocks"
    ~count:150 gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let o =
        checked_run ~max_rounds:3_000_000 ~record_trace:true
          (Can.protocol plan) config
      in
      let n = C.size config in
      let bounds = Can.phase_bounds plan in
      let sigma = plan.Can.sigma in
      (* Recorded transmissions per node, as (phase, block) pairs derived
         from global round and wake offset. *)
      let actual = Array.make n [] in
      List.iter
        (fun ev ->
          List.iter
            (fun (v, _) ->
              let local = ev.Radio_sim.Trace.round - o.Engine.wake_round.(v) in
              (* find the phase *)
              let rec phase j =
                if j > Can.num_phases plan then None
                else if local <= bounds.(j) then Some j
                else phase (j + 1)
              in
              match phase 1 with
              | None -> ()
              | Some j ->
                  let offset = local - bounds.(j - 1) in
                  let block = ((offset - 1) / ((2 * sigma) + 1)) + 1 in
                  actual.(v) <- (j, block) :: actual.(v))
            ev.Radio_sim.Trace.transmitters)
        o.Engine.trace;
      let ok = ref true in
      for v = 0 to n - 1 do
        let replayed = Can.block_trace plan o.Engine.histories.(v) in
        let expected =
          List.sort compare
            (List.filteri (fun _ _ -> true) (Array.to_list replayed)
            |> List.mapi (fun j tb -> (j + 1, tb))
            |> List.filter_map (fun (j, tb) ->
                   Option.map (fun b -> (j, b)) tb))
        in
        if List.sort compare actual.(v) <> expected then ok := false
      done;
      !ok)

(* P11: uniform tags on >= 2 nodes are always infeasible. *)
let prop_uniform_infeasible =
  QCheck.Test.make ~name:"uniform wake-up is infeasible for n >= 2" ~count:200
    gen_config (fun params ->
      let kind, n, _, seed = params in
      ignore kind;
      QCheck.assume (n >= 2);
      let st = Random.State.make [| seed |] in
      let g = Gen.random_connected_gnp st n 0.4 in
      not (Fe.is_feasible (C.uniform g 0)))

(* P12: decision function of the dedicated algorithm marks exactly one
   winner among the simulated histories (restating P2 through the pure
   decision interface). *)
let prop_decision_unique_winner =
  QCheck.Test.make ~name:"dedicated decision marks exactly one history"
    ~count:150 gen_config (fun params ->
      let config = build params in
      let run = Cl.classify config in
      QCheck.assume (Cl.is_feasible run);
      let plan = Can.plan_of_run run in
      let o = checked_run ~max_rounds:3_000_000 (Can.protocol plan) config in
      let winners =
        List.filter
          (fun v -> Can.decision plan o.Engine.histories.(v))
          (List.init (C.size config) Fun.id)
      in
      List.length winners = 1)

(* P13: the optimized engine and the executable specification agree on
   arbitrary scripted protocols. *)
let prop_engine_matches_spec =
  QCheck.Test.make ~name:"engine == executable specification" ~count:500
    gen_config (fun params ->
      let kind, _, _, seed = params in
      ignore kind;
      let config = build params in
      let st = Random.State.make [| seed + 99 |] in
      let length = 1 + Random.State.int st 10 in
      let script =
        Array.init length (fun _ ->
            match Random.State.int st 4 with
            | 0 -> P.Transmit "x"
            | 1 -> P.Transmit "y"
            | _ -> P.Listen)
      in
      let proto =
        P.stateful ~name:"script"
          ~init:(fun _ -> 0)
          ~decide:(fun i -> if i >= length then P.Terminate else script.(i))
          ~observe:(fun i _ -> i + 1)
      in
      let o = checked_run ~max_rounds:10_000 proto config in
      let s = Radio_sim.Spec_engine.run ~max_rounds:10_000 proto config in
      Radio_sim.Spec_engine.agrees_with_engine s o)

(* P14: the pure (history-function) canonical DRIP is the state machine. *)
let prop_pure_drip_equivalence =
  QCheck.Test.make ~name:"pure canonical DRIP == state machine" ~count:120
    gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let o1 = checked_run ~max_rounds:1_000_000 (Can.protocol plan) config in
      let o2 = checked_run ~max_rounds:1_000_000 (Can.pure_protocol plan) config in
      Array.for_all2 H.equal o1.Engine.histories o2.Engine.histories)

(* P15: plans survive serialization, structurally and behaviourally. *)
let prop_plan_roundtrip =
  QCheck.Test.make ~name:"plan serialization roundtrip" ~count:200 gen_config
    (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      Election.Plan_io.of_string (Election.Plan_io.to_string plan) = plan)

(* P16: Repair's output is sound (repaired configurations are feasible and
   differ only in the reported changes). *)
let prop_repair_sound =
  QCheck.Test.make ~name:"repair output is feasible and minimalistic"
    ~count:60 gen_config (fun params ->
      let kind, n, _, _ = params in
      ignore kind;
      QCheck.assume (n <= 8);
      let config = build params in
      match Election.Repair.repair ~max_changes:2 config with
      | None -> true (* nothing within budget: acceptable *)
      | Some plan ->
          Fe.is_feasible plan.Election.Repair.repaired
          && List.length plan.Election.Repair.changes <= 2
          (* an already-feasible input yields the empty plan, and only it *)
          && Fe.is_feasible config = (plan.Election.Repair.changes = []))

(* P17: Wave_election's precondition implies a correct, on-schedule
   election of the root on random depth-tagged trees. *)
let prop_wave_correct_on_trees =
  QCheck.Test.make ~name:"wave election on depth-tagged trees" ~count:150
    gen_config (fun params ->
      let kind, n, _, seed = params in
      ignore kind;
      let st = Random.State.make [| seed |] in
      let g = Gen.random_tree st n in
      let root = Random.State.int st n in
      let dist = Radio_graph.Props.bfs_distances g root in
      let slack = Random.State.int st 3 in
      let config =
        C.create g (Array.map (fun d -> if d = 0 then 0 else d + slack) dist)
      in
      QCheck.assume (Election.Wave_election.applies config);
      let r = Runner.run ~max_rounds:10_000 Election.Wave_election.election config in
      assert_valid ~protocol:Election.Wave_election.election.Runner.protocol
        r.Runner.outcome;
      r.Runner.leader = Some root
      && r.Runner.rounds_to_elect = Election.Wave_election.election_rounds config
      && Cl.is_feasible (Cl.classify config))

(* P18: the timeline renderer never raises, for terminated and cut-off
   executions alike. *)
let prop_timeline_total =
  QCheck.Test.make ~name:"timeline renders any outcome" ~count:100 gen_config
    (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let o =
        checked_run ~max_rounds:50 ~record_trace:true (Can.protocol plan) config
      in
      String.length (Radio_sim.Timeline.render_with_legend o) > 0)

(* P19: energy conservation: the per-node ledger sums to the metric. *)
let prop_energy_ledger =
  QCheck.Test.make ~name:"per-node transmissions sum to the metric" ~count:150
    gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let o = checked_run ~max_rounds:1_000_000 (Can.protocol plan) config in
      Array.fold_left ( + ) 0 o.Engine.transmissions_by_node
      = o.Engine.metrics.Radio_sim.Metrics.transmissions)

(* P20: the audit battery passes on random configurations. *)
let prop_audit_passes =
  QCheck.Test.make ~name:"audit battery passes" ~count:60 gen_config
    (fun params ->
      let config = build params in
      (Election.Audit.run ~max_rounds:1_000_000 config).Election.Audit.all_passed)

(* P21: symmetry certificates are sound: certified => classifier says
   infeasible, and the returned permutation passes the elementary check. *)
let prop_symmetry_sound =
  QCheck.Test.make ~name:"automorphism certificates are sound" ~count:200
    gen_config (fun params ->
      let config = build params in
      match Election.Symmetry.find ~budget:50_000 config with
      | None -> true
      | Some cert ->
          Election.Symmetry.is_certificate config cert
          && not (Fe.is_feasible config))

(* P22: the optimal symmetry-breaking search is consistent with the
   canonical DRIP on tiny instances: Never iff infeasible, and when broken,
   optimal <= the canonical DRIP's separation round. *)
let prop_optimal_consistent =
  QCheck.Test.make ~name:"optimal breaking time consistent" ~count:80
    gen_config (fun params ->
      let _, n, span, _ = params in
      QCheck.assume (n <= 5 && span <= 3);
      let config = build params in
      match Election.Optimal.breaking_time ~max_states:100_000 config with
      | Election.Optimal.Never -> not (Fe.is_feasible config)
      | Election.Optimal.Broken_at opt -> (
          Fe.is_feasible config
          &&
          match Election.Optimal.canonical_breaking_time config with
          | Some can -> opt <= can
          | None -> false)
      | Election.Optimal.Not_within_horizon
      | Election.Optimal.Search_budget_exhausted -> true)

(* P23: repair and fragility are mutual inverses at the boundary: a
   breaking perturbation reported by Fragility is repaired back to
   feasibility by Repair with cost <= the perturbation's own cost. *)
let prop_fragility_repair_duality =
  QCheck.Test.make ~name:"fragility/repair duality" ~count:40 gen_config
    (fun params ->
      let _, n, _, _ = params in
      QCheck.assume (n <= 7);
      let config = build params in
      QCheck.assume (Fe.is_feasible config);
      let report = Election.Fragility.single_tag config in
      List.for_all
        (fun (v, t) ->
          let tags = C.tags config in
          let cost = abs (t - tags.(v)) in
          tags.(v) <- t;
          let broken = C.create (C.graph config) tags in
          match Election.Repair.repair_one ~max_tag:(C.span config + 1) broken with
          | Some plan -> plan.Election.Repair.cost <= cost
          | None -> false (* undoing the slip always works, so never None *))
        report.Election.Fragility.breaking)

(* P24: the model-conformance checker (lib/lint) accepts every traced
   canonical execution: collision semantics, termination permanence,
   forced-wake-up uniqueness, the anonymity law and fresh-spawn replay all
   hold by construction — any engine or protocol regression trips this. *)
let prop_invariant_checker_traced =
  QCheck.Test.make ~name:"traced executions satisfy all model invariants"
    ~count:200 gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let proto = Can.protocol plan in
      let o = Engine.run ~max_rounds:3_000_000 ~record_trace:true proto config in
      Radio_lint.Report.ok (Radio_lint.Invariants.validate ~protocol:proto o))

(* ------------------------------------------------------------------ *)
(* Fault layer (lib/faults)                                            *)
(* ------------------------------------------------------------------ *)

module FP = Radio_faults.Fault_plan
module FE = Radio_faults.Faulty_engine

(* P25 (the identity law): the fault-injecting engine under the empty plan
   reproduces the pristine engine bit for bit — traces included — on the
   whole property universe.  This is the contract that lets the fault layer
   exist without forking the simulator (faulty_engine.mli). *)
let prop_empty_plan_identity =
  QCheck.Test.make ~name:"empty fault plan == pristine engine (identity law)"
    ~count:300 gen_config (fun params ->
      let config = build params in
      let plan = Can.plan_of_run (Cl.classify config) in
      let proto = Can.protocol plan in
      let fo =
        FE.run ~max_rounds:3_000_000 ~record_trace:true FP.empty proto config
      in
      let o =
        Engine.run ~max_rounds:3_000_000 ~record_trace:true proto config
      in
      FE.outcome_equal fo.FE.base o
      && fo.FE.ledger = []
      && Array.for_all (fun c -> c = -1) fo.FE.crashed_at)

(* A seed-derived mixed plan (crashes, drops, noise, jitter) over the live
   part of the run, normalized so serialization is the identity. *)
let sampled_plan ~seed config =
  let n = C.size config in
  let horizon = (3 * (n + C.span config)) + 5 in
  FP.normalize
    (FP.sample ~seed ~crashes:(min 2 n) ~drops:4 ~noise:3 ~jitters:2 ~horizon
       config)

(* P26: faulty replay determinism — the same plan replays to the identical
   outcome and ledger, and the plan survives its own serialization. *)
let prop_faulty_replay_deterministic =
  QCheck.Test.make ~name:"faulty runs replay deterministically" ~count:150
    gen_config (fun params ->
      let _, _, _, seed = params in
      let config = build params in
      let plan = sampled_plan ~seed config in
      let cplan = Can.plan_of_run (Cl.classify config) in
      let proto = Can.protocol cplan in
      let o1 =
        FE.run ~max_rounds:3_000_000 ~record_trace:true plan proto config
      in
      let o2 =
        FE.run ~max_rounds:3_000_000 ~record_trace:true plan proto config
      in
      FP.of_string (FP.to_string plan) = plan
      && FE.outcome_equal o1.FE.base o2.FE.base
      && o1.FE.ledger = o2.FE.ledger
      && o1.FE.crashed_at = o2.FE.crashed_at)

(* P27: every faulty outcome satisfies the perturbed-model invariants
   (crash silence, post-drop reception counts, noise corruption, ledger
   consistency) — the fault-aware sibling of P24. *)
let prop_faulty_outcomes_validate =
  QCheck.Test.make
    ~name:"faulty outcomes satisfy the perturbed-model invariants" ~count:150
    gen_config (fun params ->
      let _, _, _, seed = params in
      let config = build params in
      let plan = sampled_plan ~seed:(seed + 7) config in
      let cplan = Can.plan_of_run (Cl.classify config) in
      let proto = Can.protocol cplan in
      let fo =
        FE.run ~max_rounds:3_000_000 ~record_trace:true plan proto config
      in
      Radio_lint.Report.ok
        (Radio_lint.Invariants.validate_faulty ~protocol:proto fo))

(* P28 (text-format hardening): every nested crash schedule prefix,
   combined with sampled topology events, survives serialization exactly —
   and re-feeding the text with any line duplicated is a positioned parse
   error, not a silent dedup. *)
let prop_nested_topology_roundtrip =
  QCheck.Test.make ~name:"nested crash + topology plans roundtrip" ~count:100
    gen_config (fun params ->
      let _, _, _, seed = params in
      let config = build params in
      let n = C.size config in
      QCheck.assume (n >= 2);
      let horizon = (3 * (n + C.span config)) + 5 in
      let sched = FP.crash_schedule ~seed ~horizon config in
      let topo =
        FP.sample ~seed:(seed + 13) ~link_flaps:2 ~node_flaps:1 ~retags:2
          ~horizon config
      in
      List.for_all
        (fun k ->
          let crashes =
            List.filteri (fun i _ -> i < k) sched
            |> List.map (fun (node, round) -> FP.Crash { node; round })
          in
          let plan = FP.normalize (crashes @ topo) in
          let s = FP.to_string plan in
          let roundtrips = FP.of_string s = plan in
          let duplicate_rejected =
            (* re-append the last fault line: must be a positioned error *)
            match
              List.filter
                (fun l -> String.trim l <> "" && String.trim l <> "faults")
                (String.split_on_char '\n' s)
            with
            | [] -> true
            | lines -> (
                let last = List.nth lines (List.length lines - 1) in
                match FP.of_string (s ^ last ^ "\n") with
                | exception Failure msg ->
                    (* names the offending 1-based line *)
                    let expected =
                      Printf.sprintf "line %d" (List.length lines + 2)
                    in
                    let rec mem i =
                      i + String.length expected <= String.length msg
                      && (String.sub msg i (String.length expected) = expected
                         || mem (i + 1))
                    in
                    mem 0
                | _ -> false)
          in
          roundtrips && duplicate_rejected)
        (List.init (n + 1) Fun.id))

(* P29: runs under topology churn (link flaps, leaves/joins, retags mixed
   with crashes and drops) replay deterministically, and their outcomes
   satisfy the reduced perturbed-model invariants. *)
let prop_churn_replay_deterministic =
  QCheck.Test.make ~name:"topology-churn runs replay deterministically"
    ~count:100 gen_config (fun params ->
      let _, _, _, seed = params in
      let config = build params in
      let n = C.size config in
      QCheck.assume (n >= 2);
      let horizon = (3 * (n + C.span config)) + 5 in
      let plan =
        FP.normalize
          (FP.sample ~seed:(seed + 3) ~crashes:1 ~drops:2 ~link_flaps:2
             ~node_flaps:1 ~retags:1 ~horizon config)
      in
      let cplan = Can.plan_of_run (Cl.classify config) in
      let proto = Can.protocol cplan in
      let go () =
        FE.run ~max_rounds:3_000_000 ~record_trace:true plan proto config
      in
      let o1 = go () in
      let o2 = go () in
      FE.outcome_equal o1.FE.base o2.FE.base
      && o1.FE.ledger = o2.FE.ledger
      && o1.FE.crashed_at = o2.FE.crashed_at
      && o1.FE.departed_at = o2.FE.departed_at
      && Radio_lint.Report.ok
           (Radio_lint.Invariants.validate_faulty ~protocol:proto o1))

let () =
  Alcotest.run "properties"
    [
      ( "cross-validation",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fast_equals_reference;
            prop_feasible_elects_predicted_leader;
            prop_history_partition_matches;
            prop_canonical_patient;
            prop_schedule_bound;
            prop_relabel_invariance;
            prop_shift_invariance;
            prop_patient_wrap_is_patient;
            prop_refinement_monotone;
            prop_replay_consistency;
            prop_uniform_infeasible;
            prop_decision_unique_winner;
          ] );
      ( "tooling",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engine_matches_spec;
            prop_pure_drip_equivalence;
            prop_plan_roundtrip;
            prop_repair_sound;
            prop_wave_correct_on_trees;
            prop_timeline_total;
            prop_energy_ledger;
            prop_audit_passes;
            prop_symmetry_sound;
            prop_optimal_consistent;
            prop_fragility_repair_duality;
            prop_invariant_checker_traced;
          ] );
      ( "faults",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_empty_plan_identity;
            prop_faulty_replay_deterministic;
            prop_faulty_outcomes_validate;
            prop_nested_topology_roundtrip;
            prop_churn_replay_deterministic;
          ] );
    ]
