(* Tests for the two-layer analysis subsystem:

   - Radiolint_core.Rules: the source-level determinism lint (comment/string
     awareness, allow-list annotations, per-rule positives and negatives);
   - Radio_lint.{Invariants,Purity}: the model-conformance checker, fed both
     clean executions (must accept) and deliberately broken protocols or
     corrupted outcomes (must flag). *)

module Rules = Radiolint_core.Rules
module G = Radio_graph.Graph
module C = Radio_config.Config
module H = Radio_drip.History
module P = Radio_drip.Protocol
module Engine = Radio_sim.Engine
module Report = Radio_lint.Report
module Invariants = Radio_lint.Invariants
module Purity = Radio_lint.Purity

(* ------------------------------------------------------------------ *)
(* Layer 2: source rules                                               *)
(* ------------------------------------------------------------------ *)

let rules_of vs = List.map (fun v -> v.Rules.rule) vs

let flags rule ~path source =
  List.mem rule (rules_of (Rules.lint_source ~path source))

let check_flags rule ~path source () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires in %s" rule path)
    true (flags rule ~path source)

let check_clean rule ~path source () =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent in %s" rule path)
    false (flags rule ~path source)

let random_tests =
  [
    Alcotest.test_case "Random.* flagged in lib/core" `Quick
      (check_flags "random" ~path:"lib/core/foo.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "Stdlib.Random flagged too" `Quick
      (check_flags "random" ~path:"lib/sim/foo.ml"
         "let x = Stdlib.Random.bits ()\n");
    Alcotest.test_case "allowed in lib/baselines" `Quick
      (check_clean "random" ~path:"lib/baselines/foo.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "allowed in lib/graph/gen.ml" `Quick
      (check_clean "random" ~path:"lib/graph/gen.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "allowed in lib/config/random_config.ml" `Quick
      (check_clean "random" ~path:"lib/config/random_config.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "identifier prefix does not fire" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let y = MyRandom.int 10\n");
    Alcotest.test_case "comment mention does not fire" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "(* uses Random.int internally *)\nlet x = 1\n");
    Alcotest.test_case "string mention does not fire" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let s = \"Random.int\"\n");
    Alcotest.test_case "same-line allow suppresses" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let x = Random.int 10 (* radiolint: allow random — seeded *)\n");
    Alcotest.test_case "preceding-line allow suppresses" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow random — seeded by caller *)\n\
          let x = Random.int 10\n");
    Alcotest.test_case "multi-line allow comment suppresses" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow random — a justification that wraps\n\
         \   across two comment lines *)\n\
          let x = Random.int 10\n");
    Alcotest.test_case "allow for another rule does not suppress" `Quick
      (check_flags "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow obj-magic *)\nlet x = Random.int 10\n");
  ]

let obj_magic_tests =
  [
    Alcotest.test_case "Obj.magic flagged" `Quick
      (check_flags "obj-magic" ~path:"lib/analysis/foo.ml"
         "let cast = Obj.magic x\n");
    Alcotest.test_case "comment mention clean" `Quick
      (check_clean "obj-magic" ~path:"lib/analysis/foo.ml"
         "(* never use Obj.magic *)\nlet x = 1\n");
  ]

let physical_eq_tests =
  [
    Alcotest.test_case "== flagged" `Quick
      (check_flags "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a == b\n");
    Alcotest.test_case "!= flagged" `Quick
      (check_flags "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a != b\n");
    Alcotest.test_case "structural = clean" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a = b && c <> d && x <= y && x >= y\n");
    Alcotest.test_case "string literal clean" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let s = \"a == b\"\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a == b (* radiolint: allow physical-equality *)\n");
  ]

let hashtbl_tests =
  [
    Alcotest.test_case "Hashtbl.iter flagged in lib/sim" `Quick
      (check_flags "hashtbl-iteration" ~path:"lib/sim/foo.ml"
         "let () = Hashtbl.iter f tbl\n");
    Alcotest.test_case "Hashtbl.fold flagged in lib/drip" `Quick
      (check_flags "hashtbl-iteration" ~path:"lib/drip/foo.ml"
         "let x = Hashtbl.fold f tbl []\n");
    Alcotest.test_case "Hashtbl.replace clean" `Quick
      (check_clean "hashtbl-iteration" ~path:"lib/core/foo.ml"
         "let () = Hashtbl.replace tbl k v\n");
    Alcotest.test_case "iteration outside hot paths clean" `Quick
      (check_clean "hashtbl-iteration" ~path:"lib/analysis/foo.ml"
         "let () = Hashtbl.iter f tbl\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_clean "hashtbl-iteration" ~path:"lib/sim/foo.ml"
         "(* radiolint: allow hashtbl-iteration — result sorted *)\n\
          let x = List.sort compare (Hashtbl.fold f tbl [])\n");
  ]

let fault_purity_tests =
  [
    Alcotest.test_case "wall-clock flagged in lib/faults" `Quick
      (check_flags "fault-purity" ~path:"lib/faults/fault_plan.ml"
         "let now = Unix.gettimeofday ()\n");
    Alcotest.test_case "Sys.time flagged in lib/faults" `Quick
      (check_flags "fault-purity" ~path:"lib/faults/resilience.ml"
         "let t0 = Sys.time ()\n");
    Alcotest.test_case "ambient randomness flagged in lib/faults" `Quick
      (check_flags "fault-purity" ~path:"lib/faults/supervisor.ml"
         "let () = Random.self_init ()\n");
    Alcotest.test_case "same source clean outside lib/faults" `Quick
      (check_clean "fault-purity" ~path:"lib/analysis/foo.ml"
         "let now = Unix.gettimeofday ()\n");
    Alcotest.test_case "comment mention clean" `Quick
      (check_clean "fault-purity" ~path:"lib/faults/fault_plan.ml"
         "(* never Unix.gettimeofday here *)\nlet x = 1\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_clean "fault-purity" ~path:"lib/faults/fault_plan.ml"
         "(* radiolint: allow fault-purity — diagnostics only *)\n\
          let now = Unix.gettimeofday ()\n");
  ]

let with_temp_tree f =
  let dir = Filename.temp_file "radiolint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let lib = Filename.concat dir "lib" in
  Unix.mkdir lib 0o755;
  let core = Filename.concat lib "core" in
  Unix.mkdir core 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f ~dir ~core)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let missing_mli_tests =
  [
    Alcotest.test_case "ml without mli flagged" `Quick (fun () ->
        with_temp_tree (fun ~dir ~core ->
            write (Filename.concat core "a.ml") "let x = 1\n";
            let vs = Rules.lint_tree dir in
            Alcotest.(check bool) "missing-mli fires" true
              (List.mem "missing-mli" (rules_of vs))));
    Alcotest.test_case "ml with mli clean" `Quick (fun () ->
        with_temp_tree (fun ~dir ~core ->
            write (Filename.concat core "a.ml") "let x = 1\n";
            write (Filename.concat core "a.mli") "val x : int\n";
            let vs = Rules.lint_tree dir in
            Alcotest.(check (list string)) "clean" [] (rules_of vs)));
    Alcotest.test_case "seeded tree trips every rule" `Quick (fun () ->
        with_temp_tree (fun ~dir ~core ->
            write
              (Filename.concat core "bad.ml")
              "let a = Random.int 2\n\
               let b = Obj.magic a\n\
               let c = a == b\n\
               let d = Hashtbl.iter (fun _ _ -> ()) tbl\n";
            let faults = Filename.concat (Filename.dirname core) "faults" in
            Unix.mkdir faults 0o755;
            write
              (Filename.concat faults "bad.ml")
              "let now = Unix.gettimeofday ()\n";
            write (Filename.concat faults "bad.mli") "val now : float\n";
            let vs = Rules.lint_tree dir in
            let fired = List.sort_uniq compare (rules_of vs) in
            Alcotest.(check (list string))
              "all rules fire"
              (List.sort compare Rules.rule_names)
              fired));
  ]

(* ------------------------------------------------------------------ *)
(* Layer 1: model-conformance checker                                  *)
(* ------------------------------------------------------------------ *)

(* A 4-cycle with staggered tags: feasible, collision-free beacon probes. *)
let cycle4 = C.create (G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ])
    [| 0; 1; 2; 3 |]

(* Two nodes joined by an edge, waking together: simultaneous transmissions
   and a clean double-transmitter round. *)
let pair = C.create (G.of_edges 2 [ (0, 1) ]) [| 0; 0 |]

let run ?(config = cycle4) proto =
  Engine.run ~max_rounds:1_000 ~record_trace:true proto config

let check_ok name report =
  Alcotest.(check string) name "no violations" (Report.to_string report)

let has_check name vs =
  List.exists (fun v -> v.Report.check = name) vs

let clean_tests =
  [
    Alcotest.test_case "beacon outcome validates" `Quick (fun () ->
        let proto = P.beacon () in
        check_ok "beacon" (Invariants.validate ~protocol:proto (run proto)));
    Alcotest.test_case "silent outcome validates" `Quick (fun () ->
        let proto = P.silent ~lifetime:3 () in
        check_ok "silent" (Invariants.validate ~protocol:proto (run proto)));
    Alcotest.test_case "colliding pair validates" `Quick (fun () ->
        let proto = P.beacon ~delay:1 () in
        check_ok "pair"
          (Invariants.validate ~protocol:proto (run ~config:pair proto)));
    Alcotest.test_case "cut-off run validates" `Quick (fun () ->
        let proto = P.silent ~lifetime:100 () in
        let o = Engine.run ~max_rounds:10 ~record_trace:true proto cycle4 in
        Alcotest.(check bool) "not terminated" false o.Engine.all_terminated;
        check_ok "cutoff" (Invariants.validate ~protocol:proto o));
  ]

(* A deterministic-looking protocol whose instances share a spawn counter:
   exactly the shared mutable state protocol.mli forbids.  Every node
   transmits its spawn index, so nodes with identical histories act
   differently and a fresh replay diverges. *)
let shared_state_protocol () =
  let spawned = ref 0 in
  {
    P.name = "shared-spawn-counter";
    spawn =
      (fun () ->
        incr spawned;
        let me = string_of_int !spawned in
        let rounds = ref 0 in
        {
          P.on_wakeup = (fun _ -> ());
          decide =
            (fun () ->
              if !rounds = 0 then P.Transmit me else P.Terminate);
          observe = (fun _ -> incr rounds);
        });
  }

(* A protocol whose behaviour flips between whole runs: nondeterminism that
   only the rerun check can see. *)
let run_flipping_protocol () =
  let first_run = ref true in
  {
    P.name = "run-flipper";
    spawn =
      (fun () ->
        let transmit = !first_run in
        let rounds = ref 0 in
        {
          P.on_wakeup = (fun _ -> first_run := false);
          decide =
            (fun () ->
              if !rounds = 0 && transmit then P.Transmit "x"
              else if !rounds >= 1 then P.Terminate
              else P.Listen);
          observe = (fun _ -> incr rounds);
        });
  }

let broken_protocol_tests =
  [
    Alcotest.test_case "shared spawn state is flagged" `Quick (fun () ->
        let proto = shared_state_protocol () in
        let o = run ~config:pair proto in
        let vs = Invariants.validate ~protocol:proto o in
        Alcotest.(check bool) "replay diverges" true
          (has_check "purity.replay" vs);
        Alcotest.(check bool) "anonymity broken" true
          (has_check "anonymity" vs));
    Alcotest.test_case "cross-run nondeterminism is flagged" `Quick (fun () ->
        let proto = run_flipping_protocol () in
        let o = run proto in
        let vs = Purity.rerun proto o in
        Alcotest.(check bool) "rerun diverges" true
          (has_check "purity.rerun" vs));
  ]

let corrupted_outcome_tests =
  [
    Alcotest.test_case "post-terminate transmission is flagged" `Quick
      (fun () ->
        (* The engine can never produce this (it stops consulting an
           instance after Terminate), so corrupt a real outcome: pretend
           node 0 terminated before its recorded transmission. *)
        let o = run (P.beacon ()) in
        o.Engine.done_local.(0) <- 1;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "termination permanence" true
          (has_check "termination-permanence" vs));
    Alcotest.test_case "corrupted reception entry is flagged" `Quick
      (fun () ->
        let o = run (P.beacon ()) in
        (* Node 1 is woken by node 0's lone beacon; forge a collision. *)
        o.Engine.histories.(1).(1) <- H.Collision;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "collision semantics" true
          (has_check "collision-semantics" vs));
    Alcotest.test_case "corrupted wake-up kind is flagged" `Quick (fun () ->
        let o = run (P.beacon ()) in
        let v =
          match Array.to_list o.Engine.forced |> List.mapi (fun i f -> (i, f))
                |> List.find_opt (fun (_, f) -> f)
          with
          | Some (v, _) -> v
          | None -> Alcotest.fail "expected a forced wake-up"
        in
        o.Engine.forced.(v) <- false;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "wakeup kind" true (has_check "wakeup" vs));
    Alcotest.test_case "truncated history is flagged" `Quick (fun () ->
        let o = run (P.silent ~lifetime:2 ()) in
        o.Engine.done_local.(2) <- o.Engine.done_local.(2) + 1;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "history length" true
          (has_check "history-length" vs));
    Alcotest.test_case "corrupted all_terminated is flagged" `Quick (fun () ->
        let o = run (P.beacon ()) in
        o.Engine.done_local.(3) <- -1;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "termination consistency" true
          (has_check "termination" vs));
  ]

(* ------------------------------------------------------------------ *)
(* Layer 1, perturbed model: validate_faulty                           *)
(* ------------------------------------------------------------------ *)

module FP = Radio_faults.Fault_plan
module FE = Radio_faults.Faulty_engine

let frun ?(config = cycle4) plan proto =
  FE.run ~max_rounds:1_000 ~record_trace:true plan proto config

(* Node 1 (tag 1) wakes in round 1 and crash-stops in round 3, mid-run. *)
let crash_plan = [ FP.Crash { node = 1; round = 3 } ]

let faulty_clean_tests =
  [
    Alcotest.test_case "crashed run validates" `Quick (fun () ->
        let proto = P.silent ~lifetime:5 () in
        let fo = frun crash_plan proto in
        Alcotest.(check int) "crashed mid-run" 3 fo.FE.crashed_at.(1);
        check_ok "crash" (Invariants.validate_faulty ~protocol:proto fo));
    Alcotest.test_case "mixed-plan run validates" `Quick (fun () ->
        let proto = P.beacon () in
        let plan =
          [
            FP.Noise { node = 3; round = 1 };
            FP.Drop { src = 0; dst = 1; round = 1 };
            FP.Jitter { node = 2; delta = 1 };
          ]
        in
        let fo = frun plan proto in
        check_ok "mixed" (Invariants.validate_faulty ~protocol:proto fo));
    Alcotest.test_case "empty plan delegates to validate" `Quick (fun () ->
        let proto = P.beacon () in
        let fo = frun FP.empty proto in
        Alcotest.(check bool) "nothing fired" true (fo.FE.ledger = []);
        check_ok "empty" (Invariants.validate_faulty ~protocol:proto fo));
  ]

let faulty_corrupted_tests =
  [
    Alcotest.test_case "crashed node marked terminated is flagged" `Quick
      (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        fo.FE.base.Engine.done_local.(1) <- 2;
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "termination" true (has_check "termination" vs));
    Alcotest.test_case "history past the crash round is flagged" `Quick
      (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        (* Node 1 woke in round 1 and crashed in round 3: two entries.
           Pretending it crashed a round earlier truncates nothing, so the
           recorded history is now one entry too long. *)
        fo.FE.crashed_at.(1) <- 2;
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "crash-silence" true
          (has_check "crash-silence" vs));
    Alcotest.test_case "forged ledger entry is flagged" `Quick (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        let forged =
          {
            FE.round = 0;
            fault = FP.Noise { node = 0; round = 0 };
            observed_by = [ 0 ];
          }
        in
        let fo = { fo with FE.ledger = fo.FE.ledger @ [ forged ] } in
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "fault-ledger" true (has_check "fault-ledger" vs));
    Alcotest.test_case "unscheduled crashed_at entry is flagged" `Quick
      (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        fo.FE.crashed_at.(0) <- 2;
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "fault-ledger" true (has_check "fault-ledger" vs));
  ]

let () =
  Alcotest.run "lint"
    [
      ("rule-random", random_tests);
      ("rule-obj-magic", obj_magic_tests);
      ("rule-physical-equality", physical_eq_tests);
      ("rule-hashtbl-iteration", hashtbl_tests);
      ("rule-fault-purity", fault_purity_tests);
      ("rule-missing-mli", missing_mli_tests);
      ("invariants-clean", clean_tests);
      ("invariants-broken-protocols", broken_protocol_tests);
      ("invariants-corrupted-outcomes", corrupted_outcome_tests);
      ("invariants-faulty-clean", faulty_clean_tests);
      ("invariants-faulty-corrupted", faulty_corrupted_tests);
    ]
