(* Tests for the two-layer analysis subsystem:

   - Radiolint_core.Rules: the textual determinism lint (comment/string
     awareness, allow-list annotations, per-rule positives and negatives);
   - Radiolint_core.{Ast_lint,Callgraph,Taint,Sarif,Driver}: the AST rule
     engine, the interprocedural taint analysis with witness chains, the
     SARIF 2.1.0 writer, and baseline filtering;
   - Radio_lint.{Invariants,Purity}: the model-conformance checker, fed both
     clean executions (must accept) and deliberately broken protocols or
     corrupted outcomes (must flag). *)

module Rules = Radiolint_core.Rules
module Ast_lint = Radiolint_core.Ast_lint
module Callgraph = Radiolint_core.Callgraph
module Taint = Radiolint_core.Taint
module Effects = Radiolint_core.Effects
module Ranges = Radiolint_core.Ranges
module Partiality = Radiolint_core.Partiality
module Driver = Radiolint_core.Driver
module G = Radio_graph.Graph
module C = Radio_config.Config
module H = Radio_drip.History
module P = Radio_drip.Protocol
module Engine = Radio_sim.Engine
module Report = Radio_lint.Report
module Invariants = Radio_lint.Invariants
module Purity = Radio_lint.Purity

(* ------------------------------------------------------------------ *)
(* Layer 2: source rules                                               *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let rules_of vs = List.map (fun v -> v.Rules.rule) vs

let flags rule ~path source =
  List.mem rule (rules_of (Rules.lint_source ~path source))

let check_flags rule ~path source () =
  Alcotest.(check bool)
    (Printf.sprintf "%s fires in %s" rule path)
    true (flags rule ~path source)

let check_clean rule ~path source () =
  Alcotest.(check bool)
    (Printf.sprintf "%s silent in %s" rule path)
    false (flags rule ~path source)

let random_tests =
  [
    Alcotest.test_case "Random.* flagged in lib/core" `Quick
      (check_flags "random" ~path:"lib/core/foo.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "Stdlib.Random flagged too" `Quick
      (check_flags "random" ~path:"lib/sim/foo.ml"
         "let x = Stdlib.Random.bits ()\n");
    Alcotest.test_case "allowed in lib/baselines" `Quick
      (check_clean "random" ~path:"lib/baselines/foo.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "allowed in lib/graph/gen.ml" `Quick
      (check_clean "random" ~path:"lib/graph/gen.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "allowed in lib/config/random_config.ml" `Quick
      (check_clean "random" ~path:"lib/config/random_config.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "identifier prefix does not fire" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let y = MyRandom.int 10\n");
    Alcotest.test_case "comment mention does not fire" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "(* uses Random.int internally *)\nlet x = 1\n");
    Alcotest.test_case "string mention does not fire" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let s = \"Random.int\"\n");
    Alcotest.test_case "same-line allow suppresses" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let x = Random.int 10 (* radiolint: allow random — seeded *)\n");
    Alcotest.test_case "preceding-line allow suppresses" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow random — seeded by caller *)\n\
          let x = Random.int 10\n");
    Alcotest.test_case "multi-line allow comment suppresses" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow random — a justification that wraps\n\
         \   across two comment lines *)\n\
          let x = Random.int 10\n");
    Alcotest.test_case "allow for another rule does not suppress" `Quick
      (check_flags "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow obj-magic *)\nlet x = Random.int 10\n");
  ]

let obj_magic_tests =
  [
    Alcotest.test_case "Obj.magic flagged" `Quick
      (check_flags "obj-magic" ~path:"lib/analysis/foo.ml"
         "let cast = Obj.magic x\n");
    Alcotest.test_case "comment mention clean" `Quick
      (check_clean "obj-magic" ~path:"lib/analysis/foo.ml"
         "(* never use Obj.magic *)\nlet x = 1\n");
  ]

let physical_eq_tests =
  [
    Alcotest.test_case "== flagged" `Quick
      (check_flags "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a == b\n");
    Alcotest.test_case "!= flagged" `Quick
      (check_flags "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a != b\n");
    Alcotest.test_case "structural = clean" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a = b && c <> d && x <= y && x >= y\n");
    Alcotest.test_case "string literal clean" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let s = \"a == b\"\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a == b (* radiolint: allow physical-equality *)\n");
  ]

let hashtbl_tests =
  [
    Alcotest.test_case "Hashtbl.iter flagged in lib/sim" `Quick
      (check_flags "hashtbl-iteration" ~path:"lib/sim/foo.ml"
         "let () = Hashtbl.iter f tbl\n");
    Alcotest.test_case "Hashtbl.fold flagged in lib/drip" `Quick
      (check_flags "hashtbl-iteration" ~path:"lib/drip/foo.ml"
         "let x = Hashtbl.fold f tbl []\n");
    Alcotest.test_case "Hashtbl.replace clean" `Quick
      (check_clean "hashtbl-iteration" ~path:"lib/core/foo.ml"
         "let () = Hashtbl.replace tbl k v\n");
    Alcotest.test_case "iteration outside hot paths clean" `Quick
      (check_clean "hashtbl-iteration" ~path:"lib/analysis/foo.ml"
         "let () = Hashtbl.iter f tbl\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_clean "hashtbl-iteration" ~path:"lib/sim/foo.ml"
         "(* radiolint: allow hashtbl-iteration — result sorted *)\n\
          let x = List.sort compare (Hashtbl.fold f tbl [])\n");
  ]

let fault_purity_tests =
  [
    Alcotest.test_case "wall-clock flagged in lib/faults" `Quick
      (check_flags "fault-purity" ~path:"lib/faults/fault_plan.ml"
         "let now = Unix.gettimeofday ()\n");
    Alcotest.test_case "Sys.time flagged in lib/faults" `Quick
      (check_flags "fault-purity" ~path:"lib/faults/resilience.ml"
         "let t0 = Sys.time ()\n");
    Alcotest.test_case "ambient randomness flagged in lib/faults" `Quick
      (check_flags "fault-purity" ~path:"lib/faults/supervisor.ml"
         "let () = Random.self_init ()\n");
    Alcotest.test_case "same source clean outside lib/faults" `Quick
      (check_clean "fault-purity" ~path:"lib/analysis/foo.ml"
         "let now = Unix.gettimeofday ()\n");
    Alcotest.test_case "comment mention clean" `Quick
      (check_clean "fault-purity" ~path:"lib/faults/fault_plan.ml"
         "(* never Unix.gettimeofday here *)\nlet x = 1\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_clean "fault-purity" ~path:"lib/faults/fault_plan.ml"
         "(* radiolint: allow fault-purity — diagnostics only *)\n\
          let now = Unix.gettimeofday ()\n");
  ]

let with_temp_tree f =
  let dir = Filename.temp_file "radiolint" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let lib = Filename.concat dir "lib" in
  Unix.mkdir lib 0o755;
  let core = Filename.concat lib "core" in
  Unix.mkdir core 0o755;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f ~dir ~core)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let missing_mli_tests =
  [
    Alcotest.test_case "ml without mli flagged" `Quick (fun () ->
        with_temp_tree (fun ~dir ~core ->
            write (Filename.concat core "a.ml") "let x = 1\n";
            let vs = Rules.lint_tree dir in
            Alcotest.(check bool) "missing-mli fires" true
              (List.mem "missing-mli" (rules_of vs))));
    Alcotest.test_case "ml with mli clean" `Quick (fun () ->
        with_temp_tree (fun ~dir ~core ->
            write (Filename.concat core "a.ml") "let x = 1\n";
            write (Filename.concat core "a.mli") "val x : int\n";
            let vs = Rules.lint_tree dir in
            Alcotest.(check (list string)) "clean" [] (rules_of vs)));
    Alcotest.test_case "seeded tree trips every rule" `Quick (fun () ->
        with_temp_tree (fun ~dir ~core ->
            write
              (Filename.concat core "bad.ml")
              "let a = Random.int 2\n\
               let b = Obj.magic a\n\
               let c = a == b\n\
               let d = Hashtbl.iter (fun _ _ -> ()) tbl\n";
            let faults = Filename.concat (Filename.dirname core) "faults" in
            Unix.mkdir faults 0o755;
            write
              (Filename.concat faults "bad.ml")
              "let now = Unix.gettimeofday ()\n";
            write (Filename.concat faults "bad.mli") "val now : float\n";
            let vs = Rules.lint_tree dir in
            let fired = List.sort_uniq compare (rules_of vs) in
            Alcotest.(check (list string))
              "all rules fire"
              (List.sort compare Rules.rule_names)
              fired));
  ]

(* ------------------------------------------------------------------ *)
(* Layer 2: quoted string literals in strip (regression)               *)
(* ------------------------------------------------------------------ *)

let quoted_string_tests =
  [
    Alcotest.test_case "{|...|} payload is blanked" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let s = {|Random.int|}\n");
    Alcotest.test_case "{id|...|id} payload is blanked" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let s = {ext|uses Random.int here|ext}\n");
    Alcotest.test_case "== inside quoted string clean" `Quick
      (check_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let s = {|a == b|}\n");
    Alcotest.test_case "wrong closing id does not end the literal" `Quick
      (check_clean "random" ~path:"lib/core/foo.ml"
         "let s = {a|text |b} Random.int |a}\n");
    Alcotest.test_case "multi-line quoted string keeps line structure" `Quick
      (fun () ->
        let src = "let s = {|line one\nRandom.int\n|}\nlet x = 1\n" in
        Alcotest.(check bool)
          "no violation" false
          (flags "random" ~path:"lib/core/foo.ml" src);
        Alcotest.(check int)
          "line count preserved"
          (String.length (String.concat "" [ src ]))
          (String.length (Rules.strip src)));
    Alcotest.test_case "code after the literal still fires" `Quick
      (check_flags "random" ~path:"lib/core/foo.ml"
         "let s = {|quoted|}\nlet x = Random.int 3\n");
    Alcotest.test_case "record syntax is untouched" `Quick
      (check_flags "random" ~path:"lib/core/foo.ml"
         "let r = { x with seed = Random.int 3 }\n");
  ]

(* ------------------------------------------------------------------ *)
(* AST rule engine                                                     *)
(* ------------------------------------------------------------------ *)

let ast_rules_of vs = List.map (fun v -> v.Rules.rule) vs

let ast_lint ~path source =
  match Ast_lint.lint_source ~path source with
  | Ok vs -> vs
  | Error e -> Alcotest.failf "fixture should parse: %s" e

let ast_flags rule ~path source =
  List.mem rule (ast_rules_of (ast_lint ~path source))

let check_ast_flags rule ~path source () =
  Alcotest.(check bool)
    (Printf.sprintf "AST %s fires in %s" rule path)
    true (ast_flags rule ~path source)

let check_ast_clean rule ~path source () =
  Alcotest.(check bool)
    (Printf.sprintf "AST %s silent in %s" rule path)
    false (ast_flags rule ~path source)

let ast_ported_tests =
  [
    Alcotest.test_case "Random.int flagged" `Quick
      (check_ast_flags "random" ~path:"lib/core/foo.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "aliased let r = Random.int flagged" `Quick
      (check_ast_flags "random" ~path:"lib/core/foo.ml"
         "let draw = Random.int\n");
    Alcotest.test_case "module R = Random flagged" `Quick
      (check_ast_flags "random" ~path:"lib/core/foo.ml"
         "module R = Random\n");
    Alcotest.test_case "Stdlib.Random.bits flagged" `Quick
      (check_ast_flags "random" ~path:"lib/sim/foo.ml"
         "let x = Stdlib.Random.bits ()\n");
    Alcotest.test_case "Random.State.make flagged" `Quick
      (check_ast_flags "random" ~path:"lib/core/foo.ml"
         "let st = Random.State.make [| 7 |]\n");
    Alcotest.test_case "random exempt in lib/baselines" `Quick
      (check_ast_clean "random" ~path:"lib/baselines/foo.ml"
         "let x = Random.int 10\n");
    Alcotest.test_case "string literal never fires on AST" `Quick
      (check_ast_clean "random" ~path:"lib/core/foo.ml"
         "let s = \"Random.int\"\n");
    Alcotest.test_case "Obj.magic flagged" `Quick
      (check_ast_flags "obj-magic" ~path:"lib/analysis/foo.ml"
         "let cast = Obj.magic x\n");
    Alcotest.test_case "== flagged" `Quick
      (check_ast_flags "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a == c\n");
    Alcotest.test_case "aliased Stdlib.(==) flagged" `Quick
      (check_ast_flags "physical-equality" ~path:"lib/core/foo.ml"
         "let eq = Stdlib.( == )\n");
    Alcotest.test_case "structural = clean" `Quick
      (check_ast_clean "physical-equality" ~path:"lib/core/foo.ml"
         "let b = a = c && a <> d\n");
    Alcotest.test_case "Hashtbl.iter flagged in lib/sim" `Quick
      (check_ast_flags "hashtbl-iteration" ~path:"lib/sim/foo.ml"
         "let () = Hashtbl.iter f tbl\n");
    Alcotest.test_case "Hashtbl.replace clean" `Quick
      (check_ast_clean "hashtbl-iteration" ~path:"lib/sim/foo.ml"
         "let () = Hashtbl.replace tbl k v\n");
    Alcotest.test_case "fault purity: wall clock flagged" `Quick
      (check_ast_flags "fault-purity" ~path:"lib/faults/foo.ml"
         "let now = Unix.gettimeofday ()\n");
    Alcotest.test_case "allow suppresses AST rule" `Quick
      (check_ast_clean "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow random — seeded by caller *)\n\
          let x = Random.int 10\n");
    Alcotest.test_case "allow for another rule does not suppress" `Quick
      (check_ast_flags "random" ~path:"lib/core/foo.ml"
         "(* radiolint: allow obj-magic *)\nlet x = Random.int 10\n");
  ]

let ast_only_tests =
  [
    Alcotest.test_case "toplevel ref flagged" `Quick
      (check_ast_flags "toplevel-mutable-state" ~path:"lib/core/foo.ml"
         "let counter = ref 0\n");
    Alcotest.test_case "toplevel Hashtbl.create flagged" `Quick
      (check_ast_flags "toplevel-mutable-state" ~path:"lib/drip/foo.ml"
         "let memo = Hashtbl.create 16\n");
    Alcotest.test_case "toplevel ref in nested module flagged" `Quick
      (check_ast_flags "toplevel-mutable-state" ~path:"lib/sim/foo.ml"
         "module Acc = struct\n  let total = ref 0\nend\n");
    Alcotest.test_case "function-local ref clean" `Quick
      (check_ast_clean "toplevel-mutable-state" ~path:"lib/core/foo.ml"
         "let count xs =\n  let n = ref 0 in\n  List.iter (fun _ -> incr n) \
          xs;\n  !n\n");
    Alcotest.test_case "toplevel ref outside boundary clean" `Quick
      (check_ast_clean "toplevel-mutable-state" ~path:"lib/analysis/foo.ml"
         "let counter = ref 0\n");
    Alcotest.test_case "catch-all try flagged" `Quick
      (check_ast_flags "catch-all-exception" ~path:"lib/core/foo.ml"
         "let f x = try g x with _ -> 0\n");
    Alcotest.test_case "catch-all variable pattern flagged" `Quick
      (check_ast_flags "catch-all-exception" ~path:"lib/sim/foo.ml"
         "let f x = try g x with e -> ignore e; 0\n");
    Alcotest.test_case "catch-all arm after specific one flagged" `Quick
      (check_ast_flags "catch-all-exception" ~path:"lib/core/foo.ml"
         "let f x = try g x with Not_found -> 1 | _ -> 0\n");
    Alcotest.test_case "specific handler clean" `Quick
      (check_ast_clean "catch-all-exception" ~path:"lib/core/foo.ml"
         "let f x = try g x with Not_found -> 0\n");
    Alcotest.test_case "catch-all outside boundary clean" `Quick
      (check_ast_clean "catch-all-exception" ~path:"lib/analysis/foo.ml"
         "let f x = try g x with _ -> 0\n");
    Alcotest.test_case "assert false flagged" `Quick
      (check_ast_flags "assert-false" ~path:"lib/drip/foo.ml"
         "let f = function Some x -> x | None -> assert false\n");
    Alcotest.test_case "ordinary assert clean" `Quick
      (check_ast_clean "assert-false" ~path:"lib/drip/foo.ml"
         "let f x = assert (x >= 0); x\n");
    Alcotest.test_case "assert false outside boundary clean" `Quick
      (check_ast_clean "assert-false" ~path:"lib/wired/foo.ml"
         "let f = function Some x -> x | None -> assert false\n");
    Alcotest.test_case "allow suppresses AST-only rule" `Quick
      (check_ast_clean "assert-false" ~path:"lib/drip/foo.ml"
         "(* radiolint: allow assert-false — unreachable by construction *)\n\
          let f = function Some x -> x | None -> assert false\n");
    Alcotest.test_case "unparseable source reported as error" `Quick
      (fun () ->
        match Ast_lint.lint_source ~path:"lib/core/foo.ml" "let let = in\n" with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error _ -> ());
    Alcotest.test_case "toplevel ref inside functor argument flagged" `Quick
      (check_ast_flags "toplevel-mutable-state" ~path:"lib/core/foo.ml"
         "module M = Make (struct\n  let tbl = Hashtbl.create 16\nend)\n");
  ]

let poly_compare_tests =
  [
    Alcotest.test_case "bare compare flagged in lib/core" `Quick
      (check_ast_flags "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let sort xs = List.sort compare xs\n");
    Alcotest.test_case "bare compare flagged in lib/mc" `Quick
      (check_ast_flags "polymorphic-compare" ~path:"lib/mc/foo.ml"
         "let c = compare a b\n");
    Alcotest.test_case "qualified Int.compare clean" `Quick
      (check_ast_clean "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let sort xs = List.sort Int.compare xs\n");
    Alcotest.test_case "= on tuples flagged" `Quick
      (check_ast_flags "polymorphic-compare" ~path:"lib/mc/foo.ml"
         "let eq a b c d = (a, b) = (c, d)\n");
    Alcotest.test_case "= on an option payload flagged" `Quick
      (check_ast_flags "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let hit x m = x = Some m\n");
    Alcotest.test_case "<> on a list literal flagged" `Quick
      (check_ast_flags "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let ne xs y = xs <> [ y ]\n");
    Alcotest.test_case "min on a cons flagged" `Quick
      (check_ast_flags "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let m x xs = min xs (x :: xs)\n");
    Alcotest.test_case "scalar = and min stay clean" `Quick
      (check_ast_clean "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let f a b = min a b = 0 && a <> b\n");
    Alcotest.test_case "nullary None and [] stay clean" `Quick
      (check_ast_clean "polymorphic-compare" ~path:"lib/core/foo.ml"
         "let e x ys = x = None && ys <> []\n");
    Alcotest.test_case "outside lib/core and lib/mc clean" `Quick
      (check_ast_clean "polymorphic-compare" ~path:"lib/sim/foo.ml"
         "let c = compare a b\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_ast_clean "polymorphic-compare" ~path:"lib/core/foo.ml"
         "(* radiolint: allow polymorphic-compare — scalar keys only *)\n\
          let c = compare a b\n");
  ]

let domain_safety_tests =
  [
    Alcotest.test_case "Domain.spawn flagged in lib/core" `Quick
      (check_ast_flags "domain-safety" ~path:"lib/core/foo.ml"
         "let d = Domain.spawn work\n");
    Alcotest.test_case "Atomic.make flagged in lib/mc" `Quick
      (check_ast_flags "domain-safety" ~path:"lib/mc/foo.ml"
         "let counter = Atomic.make 0\n");
    Alcotest.test_case "Mutex.lock flagged in lib/faults" `Quick
      (check_ast_flags "domain-safety" ~path:"lib/faults/foo.ml"
         "let go mu = Mutex.lock mu\n");
    Alcotest.test_case "Condition.wait flagged in lib/sim" `Quick
      (check_ast_flags "domain-safety" ~path:"lib/sim/foo.ml"
         "let w c m = Condition.wait c m\n");
    Alcotest.test_case "module alias D = Domain flagged" `Quick
      (check_ast_flags "domain-safety" ~path:"lib/core/foo.ml"
         "module D = Domain\n");
    Alcotest.test_case "Stdlib.Atomic.get flagged" `Quick
      (check_ast_flags "domain-safety" ~path:"lib/core/foo.ml"
         "let g a = Stdlib.Atomic.get a\n");
    Alcotest.test_case "exempt inside lib/exec" `Quick
      (check_ast_clean "domain-safety" ~path:"lib/exec/pool.ml"
         "let d = Domain.spawn work\nlet c = Atomic.make 0\n");
    Alcotest.test_case "outside lib clean" `Quick
      (check_ast_clean "domain-safety" ~path:"bin/foo.ml"
         "let d = Domain.spawn work\n");
    Alcotest.test_case "allow suppresses" `Quick
      (check_ast_clean "domain-safety" ~path:"lib/core/foo.ml"
         "(* radiolint: allow domain-safety — benchmark scaffold *)\n\
          let d = Domain.recommended_domain_count ()\n");
  ]

(* ------------------------------------------------------------------ *)
(* Interprocedural taint                                               *)
(* ------------------------------------------------------------------ *)

(* lib-style fixture: the deterministic module reaches Random.int only
   through an intermediate helper (one cross-module call deep). *)
let helper_src =
  "let shuffle arr =\n\
  \  Array.iteri (fun i _ -> ignore (Random.int (i + 1))) arr\n"

let drip_src = "let step order = Util.shuffle order; order\n"

let taint_findings sources = Taint.analyze (Callgraph.of_sources sources)

let find_root name findings =
  List.find_opt
    (fun f -> f.Taint.func.Callgraph.display = name)
    findings

let taint_tests =
  [
    Alcotest.test_case "cross-module chain has >= 2 edges" `Quick (fun () ->
        let findings =
          taint_findings
            [
              ("lib/core/util.ml", helper_src); ("lib/drip/drip.ml", drip_src);
            ]
        in
        match find_root "Drip.step" findings with
        | None -> Alcotest.fail "Drip.step should be tainted"
        | Some f ->
            Alcotest.(check string) "sink" "Random.int" f.Taint.sink;
            Alcotest.(check bool)
              "witness has >= 2 edges" true
              (Taint.edges f >= 2);
            Alcotest.(check (list string))
              "chain names"
              [ "Drip.step"; "Util.shuffle"; "Random.int" ]
              (List.map (fun h -> h.Taint.name) f.Taint.chain));
    Alcotest.test_case "impure leaf two calls deep is reached" `Quick
      (fun () ->
        let findings =
          taint_findings
            [
              ("lib/core/leaf.ml", "let draw () = Random.bits ()\n");
              ("lib/core/mid.ml", "let pick () = Leaf.draw ()\n");
              ("lib/drip/top.ml", "let step () = Mid.pick ()\n");
            ]
        in
        match find_root "Top.step" findings with
        | None -> Alcotest.fail "Top.step should be tainted"
        | Some f ->
            Alcotest.(check int) "three edges" 3 (Taint.edges f);
            Alcotest.(check string) "sink" "Random.bits" f.Taint.sink);
    Alcotest.test_case "helper in an exempt module is a barrier" `Quick
      (fun () ->
        (* Same shape, but the helper lives in lib/config/random_config.ml
           (explicitly seeded by contract): the caller stays clean. *)
        let findings =
          taint_findings
            [
              ( "lib/config/random_config.ml",
                "let draw n = Random.int n\n" );
              ( "lib/drip/drip.ml",
                "let step order = ignore (Random_config.draw 4); order\n" );
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "allow-annotated helper is a barrier" `Quick (fun () ->
        let annotated =
          "(* radiolint: allow taint — PRNG audited and locally seeded *)\n"
          ^ helper_src
        in
        let findings =
          taint_findings
            [
              ("lib/core/util.ml", annotated); ("lib/drip/drip.ml", drip_src);
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "direct primitive use is a 1-edge chain" `Quick
      (fun () ->
        let findings =
          taint_findings [ ("lib/sim/clock.ml", "let now () = Sys.time ()\n") ]
        in
        match find_root "Clock.now" findings with
        | None -> Alcotest.fail "Clock.now should be tainted"
        | Some f ->
            Alcotest.(check int) "one edge" 1 (Taint.edges f);
            Alcotest.(check string) "sink" "Sys.time" f.Taint.sink);
    Alcotest.test_case "pure cross-module calls stay clean" `Quick (fun () ->
        let findings =
          taint_findings
            [
              ("lib/core/util.ml", "let double x = x * 2\n");
              ("lib/drip/drip.ml", "let step x = Util.double x\n");
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "taint outside checked dirs not reported" `Quick
      (fun () ->
        let findings =
          taint_findings
            [ ("lib/analysis/foo.ml", "let t () = Sys.time ()\n") ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "submodule definitions are reachable" `Quick (fun () ->
        let findings =
          taint_findings
            [
              ( "lib/sim/trace.ml",
                "module Acc = struct\n\
                \  let stamp () = Unix.gettimeofday ()\n\
                 end\n" );
              ( "lib/drip/drip.ml",
                "let step () = Trace.Acc.stamp ()\n" );
            ]
        in
        Alcotest.(check bool)
          "Drip.step tainted" true
          (find_root "Drip.step" findings <> None));
    Alcotest.test_case "binding inside a functor application is indexed"
      `Quick (fun () ->
        (* Regression: [collect_module] used to stop at [Pmod_apply], so the
           argument struct's impure [draw] was invisible to the analysis. *)
        let findings =
          taint_findings
            [
              ( "lib/drip/foo.ml",
                "module M = Make (struct let draw () = Random.int 5 end)\n"
              );
            ]
        in
        match find_root "Foo.M.draw" findings with
        | None -> Alcotest.fail "Foo.M.draw should be indexed and tainted"
        | Some f ->
            Alcotest.(check string) "sink" "Random.int" f.Taint.sink;
            Alcotest.(check int) "direct use" 1 (Taint.edges f));
    Alcotest.test_case "binding inside let module is indexed" `Quick
      (fun () ->
        (* Regression: [let module Local = struct ... end in ...] bodies
           were folded into the enclosing binding without indexing the
           module's own functions as nodes. *)
        let findings =
          taint_findings
            [
              ( "lib/sim/foo.ml",
                "let step () =\n\
                \  let module Local = struct\n\
                \    let draw () = Random.bits ()\n\
                \  end in\n\
                \  Local.draw ()\n" );
            ]
        in
        Alcotest.(check bool)
          "Foo.Local.draw indexed and tainted" true
          (find_root "Foo.Local.draw" findings <> None);
        Alcotest.(check bool)
          "enclosing Foo.step tainted too" true
          (find_root "Foo.step" findings <> None));
    Alcotest.test_case "call under let open resolves" `Quick (fun () ->
        (* Regression: [let open Util in shuffle order] used to drop the
           edge to Util.shuffle because the bare [shuffle] never resolved —
           the opened-module variant restores it. *)
        let findings =
          taint_findings
            [
              ("lib/core/util.ml", helper_src);
              ( "lib/drip/drip.ml",
                "let step order = let open Util in shuffle order\n" );
            ]
        in
        match find_root "Drip.step" findings with
        | None -> Alcotest.fail "Drip.step should be tainted through the open"
        | Some f ->
            Alcotest.(check (list string))
              "chain names"
              [ "Drip.step"; "Util.shuffle"; "Random.int" ]
              (List.map (fun h -> h.Taint.name) f.Taint.chain));
    Alcotest.test_case "call under M.(...) resolves" `Quick (fun () ->
        let findings =
          taint_findings
            [
              ("lib/core/util.ml", helper_src);
              ("lib/drip/drip.ml", "let step order = Util.(shuffle order)\n");
            ]
        in
        Alcotest.(check bool)
          "Drip.step tainted" true
          (find_root "Drip.step" findings <> None));
    Alcotest.test_case "call under toplevel open resolves" `Quick (fun () ->
        let findings =
          taint_findings
            [
              ("lib/core/util.ml", helper_src);
              ( "lib/drip/drip.ml",
                "open Util\nlet step order = shuffle order\n" );
            ]
        in
        Alcotest.(check bool)
          "Drip.step tainted" true
          (find_root "Drip.step" findings <> None));
    Alcotest.test_case "local binding does not alias a toplevel def" `Quick
      (fun () ->
        (* Regression: a local [let draw = ...] inside a body used to
           resolve the bare [draw] to the same-named toplevel binding,
           fabricating an edge into its effects. *)
        let findings =
          taint_findings
            [
              ( "lib/drip/drip.ml",
                "let draw () = Random.bits ()\n\
                 let step x =\n\
                \  let draw = x + 1 in\n\
                \  draw\n" );
            ]
        in
        Alcotest.(check bool)
          "Drip.step stays clean" true
          (find_root "Drip.step" findings = None));
  ]

(* ------------------------------------------------------------------ *)
(* Interprocedural effects                                             *)
(* ------------------------------------------------------------------ *)

let effect_infos sources = Effects.classify (Callgraph.of_sources sources)
let effect_escapes sources = Effects.escapes (Callgraph.of_sources sources)

let info_of name infos =
  List.find_opt
    (fun (i : Effects.info) -> i.Effects.def.Callgraph.display = name)
    infos

let check_class name expected infos =
  match info_of name infos with
  | None -> Alcotest.fail (name ^ " should be classified")
  | Some i ->
      Alcotest.(check string)
        (name ^ " class") (Effects.cls_name expected)
        (Effects.cls_name i.Effects.cls)

let effect_class_tests =
  [
    Alcotest.test_case "pure arithmetic is Pure" `Quick (fun () ->
        let infos =
          effect_infos [ ("lib/core/foo.ml", "let add x y = x + y\n") ]
        in
        check_class "Foo.add" Effects.Pure infos;
        match info_of "Foo.add" infos with
        | Some i -> Alcotest.(check int) "no chain" 0 (List.length i.Effects.chain)
        | None -> Alcotest.fail "Foo.add missing");
    Alcotest.test_case "ref mutation is LocalMut" `Quick (fun () ->
        check_class "Foo.bump" Effects.Local_mut
          (effect_infos [ ("lib/core/foo.ml", "let bump r = incr r\n") ]));
    Alcotest.test_case "indexed assignment is LocalMut" `Quick (fun () ->
        (* a.(i) <- v desugars to Array.set: the ident classifier sees it. *)
        check_class "Foo.set" Effects.Local_mut
          (effect_infos
             [ ("lib/core/foo.ml", "let set a i v = a.(i) <- v\n") ]));
    Alcotest.test_case "record-field assignment is LocalMut" `Quick (fun () ->
        check_class "Foo.tick" Effects.Local_mut
          (effect_infos
             [
               ( "lib/core/foo.ml",
                 "type t = { mutable n : int }\n\
                  let tick c = c.n <- c.n + 1\n" );
             ]));
    Alcotest.test_case "Atomic use is SharedMut" `Quick (fun () ->
        check_class "Foo.get" Effects.Shared_mut
          (effect_infos [ ("lib/core/foo.ml", "let get a = Atomic.get a\n") ]));
    Alcotest.test_case "module-level mutable read is SharedMut" `Quick
      (fun () ->
        (* A read is as scheduling-order sensitive as a write. *)
        check_class "Foo.peek" Effects.Shared_mut
          (effect_infos
             [
               ( "lib/core/foo.ml",
                 "let cache = Hashtbl.create 16\n\
                  let peek () = Hashtbl.length cache\n" );
             ]));
    Alcotest.test_case "printing is IO" `Quick (fun () ->
        check_class "Foo.log" Effects.Io
          (effect_infos
             [ ("lib/core/foo.ml", "let log x = print_endline x\n") ]));
    Alcotest.test_case "Sys read is IO" `Quick (fun () ->
        check_class "Foo.home" Effects.Io
          (effect_infos
             [ ("lib/core/foo.ml", "let home () = Sys.getenv \"HOME\"\n") ]));
    Alcotest.test_case "Sys constants stay Pure" `Quick (fun () ->
        check_class "Foo.ws" Effects.Pure
          (effect_infos [ ("lib/core/foo.ml", "let ws () = Sys.word_size\n") ]));
    Alcotest.test_case "pp helper on a caller-supplied formatter stays Pure"
      `Quick (fun () ->
        check_class "Foo.pp" Effects.Pure
          (effect_infos
             [
               ( "lib/core/foo.ml",
                 "let pp ppf x = Format.fprintf ppf \"%d\" x\n" );
             ]));
    Alcotest.test_case "class joins over a 2-edge chain with witness" `Quick
      (fun () ->
        let infos =
          effect_infos
            [
              ( "lib/core/foo.ml",
                "let log x = print_endline x\nlet run x = log x\n" );
            ]
        in
        check_class "Foo.run" Effects.Io infos;
        match info_of "Foo.run" infos with
        | None -> Alcotest.fail "Foo.run missing"
        | Some i ->
            Alcotest.(check (list string))
              "witness chain"
              [ "Foo.run"; "Foo.log"; "print_endline" ]
              (List.map (fun (h : Effects.hop) -> h.Effects.name) i.Effects.chain));
    Alcotest.test_case "local shadow does not inherit the toplevel class"
      `Quick (fun () ->
        let infos =
          effect_infos
            [
              ( "lib/core/foo.ml",
                "let log x = print_endline x\n\
                 let step x =\n\
                \  let log = x + 1 in\n\
                \  log\n" );
            ]
        in
        check_class "Foo.step" Effects.Pure infos);
  ]

let find_escape name findings =
  List.find_opt
    (fun (f : Effects.finding) -> f.Effects.func.Callgraph.display = name)
    findings

let escape_chain f =
  List.map (fun (h : Effects.hop) -> h.Effects.name) f.Effects.chain

let effect_escape_tests =
  [
    Alcotest.test_case "task mutating shared table through a 2-edge chain"
      `Quick (fun () ->
        let findings =
          effect_escapes
            [
              ( "lib/analysis/foo.ml",
                "let cache = Hashtbl.create 16\n\
                 let note x = Hashtbl.replace cache x x\n\
                 let go pool xs =\n\
                \  Radio_exec.Pool.map pool ~f:(fun x -> note x) xs\n" );
            ]
        in
        match find_escape "Foo.go" findings with
        | None -> Alcotest.fail "Foo.go should be reported"
        | Some f ->
            Alcotest.(check string)
              "class" "SharedMut"
              (Effects.cls_name f.Effects.cls);
            Alcotest.(check string) "source" "Foo.cache" f.Effects.source;
            Alcotest.(check int) "submit line" 4 f.Effects.submit_line;
            Alcotest.(check (list string))
              "witness chain"
              [ "Foo.go"; "Foo.note"; "Foo.cache" ]
              (escape_chain f);
            Alcotest.(check int) "edges" 2 (Effects.edges f));
    Alcotest.test_case "IO three calls deep is reached" `Quick (fun () ->
        let findings =
          effect_escapes
            [
              ("lib/core/leaf.ml", "let say x = print_endline x\n");
              ("lib/core/mid.ml", "let relay x = Leaf.say x\n");
              ( "lib/analysis/top.ml",
                "let go pool xs =\n\
                \  Radio_exec.Pool.iter_batches pool ~f:(fun x -> Mid.relay \
                 x) xs\n" );
            ]
        in
        match find_escape "Top.go" findings with
        | None -> Alcotest.fail "Top.go should be reported"
        | Some f ->
            Alcotest.(check string) "class" "IO" (Effects.cls_name f.Effects.cls);
            Alcotest.(check (list string))
              "witness chain"
              [ "Top.go"; "Mid.relay"; "Leaf.say"; "print_endline" ]
              (escape_chain f));
    Alcotest.test_case "direct mutation inside the closure is caught" `Quick
      (fun () ->
        let findings =
          effect_escapes
            [
              ( "lib/analysis/foo.ml",
                "let hits = ref 0\n\
                 let go pool xs =\n\
                \  Radio_exec.Pool.iter_batches pool ~f:(fun _ -> hits := 1) \
                 xs\n" );
            ]
        in
        match find_escape "Foo.go" findings with
        | None -> Alcotest.fail "Foo.go should be reported"
        | Some f ->
            Alcotest.(check string) "source" "Foo.hits" f.Effects.source;
            Alcotest.(check (list string))
              "witness chain" [ "Foo.go"; "Foo.hits" ] (escape_chain f));
    Alcotest.test_case "local mutation in the task stays clean" `Quick
      (fun () ->
        let findings =
          effect_escapes
            [
              ( "lib/analysis/foo.ml",
                "let go pool xs =\n\
                \  Radio_exec.Pool.map pool\n\
                \    ~f:(fun x -> let r = ref 0 in r := x; !r) xs\n" );
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "commit closure runs on the caller: not checked"
      `Quick (fun () ->
        (* ~commit mutating shared state is the contract (in-order, caller
           domain); only ~f runs on workers. *)
        let findings =
          effect_escapes
            [
              ( "lib/analysis/foo.ml",
                "let acc = Hashtbl.create 16\n\
                 let go pool xs =\n\
                \  Radio_exec.Pool.run_batch pool ~f:(fun _ x -> x + 1)\n\
                \    ~commit:(fun i y -> Hashtbl.replace acc i y) xs\n" );
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "Intern local views are a barrier" `Quick (fun () ->
        let findings =
          effect_escapes
            [
              ( "lib/exec/intern.ml",
                "let table = Hashtbl.create 16\n\
                 let commit l = Hashtbl.replace table l l\n" );
              ( "lib/analysis/foo.ml",
                "let go pool xs =\n\
                \  Radio_exec.Pool.map pool ~f:(fun x -> Intern.commit x) xs\n"
              );
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "allow-effect annotation is a barrier" `Quick
      (fun () ->
        let findings =
          effect_escapes
            [
              ( "lib/analysis/foo.ml",
                "let cache = Hashtbl.create 16\n\
                 (* radiolint: allow effect — replayed at the barrier *)\n\
                 let go pool xs =\n\
                \  Radio_exec.Pool.map pool ~f:(fun x -> Hashtbl.replace \
                 cache x x) xs\n" );
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "map_chunked is a submit site" `Quick (fun () ->
        (* The explorer's parallel frontier expands waves through
           [Pool.map_chunked]; a wave closure leaking into module state
           must be caught like any other task. *)
        let findings =
          effect_escapes
            [
              ( "lib/mc/foo.ml",
                "let tally = Hashtbl.create 16\n\
                 let go pool waves =\n\
                \  Radio_exec.Pool.map_chunked pool\n\
                \    ~f:(fun part -> Hashtbl.replace tally part part; part)\n\
                \    waves\n" );
            ]
        in
        match find_escape "Foo.go" findings with
        | None -> Alcotest.fail "Foo.go should be reported"
        | Some f ->
            Alcotest.(check string)
              "class" "SharedMut"
              (Effects.cls_name f.Effects.cls);
            Alcotest.(check string) "source" "Foo.tally" f.Effects.source;
            Alcotest.(check int) "submit line" 3 f.Effects.submit_line);
    Alcotest.test_case "frontier wave over intern views stays clean" `Quick
      (fun () ->
        (* The shape checker.ml actually submits: each chunk builds a
           local Intern view, interns successor keys into it and hands the
           view back for the caller's in-order commit — LocalMut only. *)
        let findings =
          effect_escapes
            [
              ( "lib/exec/intern.ml",
                "let table = Hashtbl.create 16\n\
                 let local t = Hashtbl.copy t\n\
                 let get_local v k = Hashtbl.replace v k k; k\n\
                 let commit t v = Hashtbl.length v\n" );
              ( "lib/mc/wave.ml",
                "let expand geti x = Array.init 4 (fun i -> geti (x + i))\n\
                 let go pool intern waves =\n\
                \  Radio_exec.Pool.map_chunked pool\n\
                \    ~f:(fun part ->\n\
                \      let view = Intern.local intern in\n\
                \      (view, Array.map (expand (Intern.get_local view)) \
                 part))\n\
                \    waves\n" );
            ]
        in
        Alcotest.(check int) "no findings" 0 (List.length findings));
    Alcotest.test_case "worst class wins across task references" `Quick
      (fun () ->
        let findings =
          effect_escapes
            [
              ( "lib/analysis/foo.ml",
                "let cache = Hashtbl.create 16\n\
                 let note x = Hashtbl.replace cache x x\n\
                 let shout x = print_endline x\n\
                 let go pool xs =\n\
                \  Radio_exec.Pool.map pool ~f:(fun x -> note x; shout x; x) \
                 xs\n" );
            ]
        in
        match find_escape "Foo.go" findings with
        | None -> Alcotest.fail "Foo.go should be reported"
        | Some f ->
            Alcotest.(check string) "IO beats SharedMut" "IO"
              (Effects.cls_name f.Effects.cls));
  ]


(* ------------------------------------------------------------------ *)
(* Value-range analysis (Ranges)                                       *)
(* ------------------------------------------------------------------ *)

let asts_of sources =
  List.filter_map
    (fun (path, text) ->
      match Ast_lint.parse ~path text with
      | Ok ast -> Some (Rules.normalize path, ast)
      | Error _ -> None)
    sources

let ranges_of sources =
  Ranges.analyze (Callgraph.of_sources sources) ~asts:(asts_of sources)

let range_rules sources =
  List.map (fun f -> f.Ranges.rule_id) (ranges_of sources)

let ranges_tests =
  [
    Alcotest.test_case "unbounded shift flags range-overflow" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "flagged" [ "range-overflow" ]
          (range_rules [ ("lib/mc/fix.ml", "let mask v = 1 lsl v\n") ]));
    Alcotest.test_case "caller narrowing silences the same shift" `Quick
      (fun () ->
        (* Interprocedural: every call site hands [mask] a small argument,
           so the joined parameter interval proves the shift safe. *)
        Alcotest.(check (list string))
          "clean" []
          (range_rules
             [
               ( "lib/mc/fix.ml",
                 "let mask v = 1 lsl v\n\
                  let use () = mask 3\n\
                  let narrow v = mask (v land 0x7)\n" );
             ]));
    Alcotest.test_case "Char.chr of an unbounded value flags truncation"
      `Quick (fun () ->
        Alcotest.(check (list string))
          "flagged" [ "range-truncation" ]
          (range_rules [ ("lib/mc/fix.ml", "let b v = Char.chr v\n") ]));
    Alcotest.test_case "masked Char.chr argument is clean" `Quick (fun () ->
        Alcotest.(check (list string))
          "clean" []
          (range_rules
             [ ("lib/mc/fix.ml", "let b v = Char.chr (v land 0xff)\n") ]));
    Alcotest.test_case "unguarded unsafe_get flags range-index" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "flagged" [ "range-index" ]
          (range_rules
             [ ("lib/mc/fix.ml", "let g b i = Bytes.unsafe_get b i\n") ]));
    Alcotest.test_case "a dominating bounds guard silences unsafe_get"
      `Quick (fun () ->
        Alcotest.(check (list string))
          "clean" []
          (range_rules
             [
               ( "lib/mc/fix.ml",
                 "let g b i =\n\
                  \  if i >= 0 && i < Bytes.length b then\n\
                  \    Some (Bytes.unsafe_get b i)\n\
                  \  else None\n" );
             ]));
    Alcotest.test_case "for-loop bounds guard unsafe indexing" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "clean" []
          (range_rules
             [
               ( "lib/mc/fix.ml",
                 "let sum a =\n\
                  \  let t = ref 0 in\n\
                  \  for i = 0 to Array.length a - 1 do\n\
                  \    t := !t + Array.unsafe_get a i\n\
                  \  done;\n\
                  \  !t\n" );
             ]));
    Alcotest.test_case "allow annotation is a barrier" `Quick (fun () ->
        Alcotest.(check (list string))
          "suppressed" []
          (range_rules
             [
               ( "lib/mc/fix.ml",
                 "(* radiolint: allow range-overflow -- wraps by design *)\n\
                  let mask v = 1 lsl v\n" );
             ]));
    Alcotest.test_case "files outside the hot paths are not checked" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "clean" []
          (range_rules [ ("lib/core/fix.ml", "let mask v = 1 lsl v\n") ]));
  ]

(* ------------------------------------------------------------------ *)
(* Exception-escape analysis (Partiality)                              *)
(* ------------------------------------------------------------------ *)

let partiality_of sources =
  let cg = Callgraph.of_sources sources in
  Partiality.findings (Partiality.analyze cg ~asts:(asts_of sources))

let partiality_tests =
  [
    Alcotest.test_case "failwith escapes a CLI entry" `Quick (fun () ->
        match
          partiality_of
            [
              ( "bin/foo.ml",
                "let boom () = failwith \"boom\"\n\
                 let run_cmd () = boom ()\n" );
            ]
        with
        | [ f ] ->
            Alcotest.(check (list string))
              "Failure reported" [ "Failure" ] f.Partiality.exns;
            Alcotest.(check bool)
              "anchored at the entry" true
              (f.Partiality.func = "Foo.run_cmd")
        | fs ->
            Alcotest.failf "expected exactly one finding, got %d"
              (List.length fs));
    Alcotest.test_case "a try/with handler subtracts the exception" `Quick
      (fun () ->
        Alcotest.(check int)
          "clean" 0
          (List.length
             (partiality_of
                [
                  ( "bin/foo.ml",
                    "let boom () = failwith \"boom\"\n\
                     let run_cmd () = try boom () with Failure _ -> ()\n" );
                ])));
    Alcotest.test_case "partial stdlib lookups are sources" `Quick (fun () ->
        match
          partiality_of
            [ ("bin/foo.ml", "let find_cmd tbl = Hashtbl.find tbl 3\n") ]
        with
        | [ f ] ->
            Alcotest.(check (list string))
              "Not_found reported" [ "Not_found" ] f.Partiality.exns
        | fs ->
            Alcotest.failf "expected exactly one finding, got %d"
              (List.length fs));
    Alcotest.test_case "an exception reaching a Pool task closure is a \
                        finding at the submit site" `Quick (fun () ->
        match
          partiality_of
            [
              ( "lib/exec/work.ml",
                "let risky x = List.hd x\n\
                 let run pool xs = Radio_exec.Pool.map pool ~f:risky xs\n" );
            ]
        with
        | [ f ] ->
            Alcotest.(check (list string))
              "Failure reported" [ "Failure" ] f.Partiality.exns;
            Alcotest.(check bool)
              "task finding" true
              (f.Partiality.kind = `Task);
            Alcotest.(check int) "anchored at submit" 2 f.Partiality.line
        | fs ->
            Alcotest.failf "expected exactly one finding, got %d"
              (List.length fs));
    Alcotest.test_case "allow on the submit line suppresses the task \
                        finding" `Quick (fun () ->
        Alcotest.(check int)
          "suppressed" 0
          (List.length
             (partiality_of
                [
                  ( "lib/exec/work.ml",
                    "let risky x = List.hd x\n\
                     (* radiolint: allow partiality -- crash wanted *)\n\
                     let run pool xs = Radio_exec.Pool.map pool ~f:risky \
                     xs\n" );
                ])));
    Alcotest.test_case "non-entry lib functions are not reported" `Quick
      (fun () ->
        Alcotest.(check int)
          "clean" 0
          (List.length
             (partiality_of
                [ ("lib/core/foo.ml", "let boom () = failwith \"x\"\n") ])));
  ]

(* ------------------------------------------------------------------ *)
(* Differential: frozen pre-refactor cores vs the dataflow framework   *)
(* ------------------------------------------------------------------ *)

(* The taint and effect analyses were re-expressed as instances of the
   generic dataflow framework (tools/lint/dataflow.ml).  The refactor
   must be behavior-preserving, so these tests freeze the original
   reverse-edge worklist cores — copied verbatim from the pre-refactor
   taint.ml/effects.ml, reduced to string serialization — and assert
   both engines produce identical findings (sinks, classes and full
   witness chains) on fixtures and on the real lib/ tree. *)

module Frozen = struct
  let hop_repr name path line = Printf.sprintf "%s@%s:%d" name path line

  type tcause = Prim of string * int | Tcall of string * int

  let taint ?(checked = Rules.deterministic_boundary)
      ?(exempt = Rules.random_allowed) cg =
    let barrier (d : Callgraph.def) =
      exempt d.Callgraph.def_path
      || Callgraph.allowed cg ~path:d.Callgraph.def_path
           ~line:d.Callgraph.def_line ~rule:Taint.rule
    in
    let tainted : (string, tcause) Hashtbl.t = Hashtbl.create 32 in
    let callers : (string, Callgraph.def * int) Hashtbl.t =
      Hashtbl.create 64
    in
    let queue = Queue.create () in
    List.iter
      (fun (d : Callgraph.def) ->
        if not (barrier d) then begin
          let top = Callgraph.module_name_of_path d.Callgraph.def_path in
          List.iter
            (fun { Callgraph.target; ref_line } ->
              (match Taint.primitive target with
              | Some p when not (Hashtbl.mem tainted d.Callgraph.key) ->
                  Hashtbl.replace tainted d.Callgraph.key (Prim (p, ref_line));
                  Queue.add d.Callgraph.key queue
              | _ -> ());
              match Taint.resolve cg ~top target with
              | Some callee when callee <> d.Callgraph.key ->
                  Hashtbl.add callers callee (d, ref_line)
              | _ -> ())
            d.Callgraph.refs
        end)
      (Callgraph.defs cg);
    while not (Queue.is_empty queue) do
      let callee = Queue.pop queue in
      List.iter
        (fun ((d : Callgraph.def), line) ->
          if not (Hashtbl.mem tainted d.Callgraph.key) then begin
            Hashtbl.replace tainted d.Callgraph.key (Tcall (callee, line));
            Queue.add d.Callgraph.key queue
          end)
        (Hashtbl.find_all callers callee)
    done;
    let chain_of (d : Callgraph.def) =
      let rec go (d : Callgraph.def) acc =
        let hop =
          hop_repr d.Callgraph.display d.Callgraph.def_path
            d.Callgraph.def_line
        in
        match Hashtbl.find_opt tainted d.Callgraph.key with
        | Some (Prim (p, line)) ->
            ( List.rev
                (hop_repr p d.Callgraph.def_path line :: hop :: acc),
              p )
        | Some (Tcall (callee, _)) -> (
            match Callgraph.find cg callee with
            | Some next -> go next (hop :: acc)
            | None -> (List.rev (hop :: acc), "?"))
        | None -> (List.rev (hop :: acc), "?")
      in
      go d []
    in
    Callgraph.defs cg
    |> List.filter (fun (d : Callgraph.def) ->
           checked d.Callgraph.def_path
           && Hashtbl.mem tainted d.Callgraph.key)
    |> List.map (fun (d : Callgraph.def) ->
           let chain, sink = chain_of d in
           Printf.sprintf "%s <- %s via %s" d.Callgraph.display sink
             (String.concat " -> " chain))
    |> List.sort compare

  type ecause = Edirect of string * int | Ecall of string * int

  let effects ?(exempt = Effects.intern_exempt) cg =
    let barrier (d : Callgraph.def) =
      exempt d.Callgraph.def_path
      || Callgraph.allowed cg ~path:d.Callgraph.def_path
           ~line:d.Callgraph.def_line ~rule:Effects.rule
    in
    let table : (string, Effects.cls * ecause) Hashtbl.t =
      Hashtbl.create 64
    in
    let cls_of key =
      match Hashtbl.find_opt table key with
      | Some (c, _) -> c
      | None -> Effects.Pure
    in
    let direct_of ~top (r : Callgraph.reference) =
      if Effects.shared_primitive r.Callgraph.target then
        Some
          ( Effects.Shared_mut,
            String.concat "." r.Callgraph.target,
            r.Callgraph.ref_line )
      else if Effects.io_primitive r.Callgraph.target then
        Some
          ( Effects.Io,
            String.concat "." r.Callgraph.target,
            r.Callgraph.ref_line )
      else
        match Taint.resolve cg ~top r.Callgraph.target with
        | Some key when Callgraph.is_mutable cg key ->
            let name =
              match Callgraph.find cg key with
              | Some d -> d.Callgraph.display
              | None -> key
            in
            Some (Effects.Shared_mut, name, r.Callgraph.ref_line)
        | _ ->
            if Effects.mutation r.Callgraph.target then
              Some
                ( Effects.Local_mut,
                  String.concat "." r.Callgraph.target,
                  r.Callgraph.ref_line )
            else None
    in
    let callers : (string, Callgraph.def * int) Hashtbl.t =
      Hashtbl.create 64
    in
    let queue = Queue.create () in
    let raise_to key c cause =
      if Effects.rank c > Effects.rank (cls_of key) then begin
        Hashtbl.replace table key (c, cause);
        Queue.add key queue
      end
    in
    List.iter
      (fun (d : Callgraph.def) ->
        if not (barrier d) then begin
          let top = Callgraph.module_name_of_path d.Callgraph.def_path in
          List.iter
            (fun (r : Callgraph.reference) ->
              (match direct_of ~top r with
              | Some (c, name, line) ->
                  raise_to d.Callgraph.key c (Edirect (name, line))
              | None -> ());
              match Taint.resolve cg ~top r.Callgraph.target with
              | Some callee when callee <> d.Callgraph.key ->
                  Hashtbl.add callers callee (d, r.Callgraph.ref_line)
              | _ -> ())
            d.Callgraph.refs;
          List.iter
            (fun line ->
              raise_to d.Callgraph.key Effects.Local_mut
                (Edirect ("<- (record field)", line)))
            d.Callgraph.setfield_lines
        end)
      (Callgraph.defs cg);
    while not (Queue.is_empty queue) do
      let callee = Queue.pop queue in
      let c = cls_of callee in
      List.iter
        (fun ((d : Callgraph.def), line) ->
          raise_to d.Callgraph.key c (Ecall (callee, line)))
        (Hashtbl.find_all callers callee)
    done;
    let chain_of (d : Callgraph.def) =
      let rec go (d : Callgraph.def) acc seen =
        let hop =
          hop_repr d.Callgraph.display d.Callgraph.def_path
            d.Callgraph.def_line
        in
        match Hashtbl.find_opt table d.Callgraph.key with
        | Some (_, Edirect (name, line)) ->
            ( List.rev
                (hop_repr name d.Callgraph.def_path line :: hop :: acc),
              name )
        | Some (_, Ecall (callee, _)) when not (List.mem callee seen) -> (
            match Callgraph.find cg callee with
            | Some next -> go next (hop :: acc) (callee :: seen)
            | None -> (List.rev (hop :: acc), "?"))
        | _ -> (List.rev (hop :: acc), "?")
      in
      go d [] [ d.Callgraph.key ]
    in
    let classify_repr =
      Callgraph.defs cg
      |> List.map (fun (d : Callgraph.def) ->
             let cls = cls_of d.Callgraph.key in
             let chain =
               if cls = Effects.Pure then []
               else fst (chain_of d)
             in
             Printf.sprintf "%s@%s:%d=%s via %s" d.Callgraph.display
               d.Callgraph.def_path d.Callgraph.def_line
               (Effects.cls_name cls)
               (String.concat " -> " chain))
      |> List.sort compare
    in
    let escapes_repr =
      Callgraph.defs cg
      |> List.filter_map (fun (d : Callgraph.def) ->
             if d.Callgraph.tasks = [] || barrier d then None
             else
               List.fold_left
                 (fun worst (t : Callgraph.task) ->
                   let top =
                     Callgraph.module_name_of_path d.Callgraph.def_path
                   in
                   let submit_hop =
                     hop_repr d.Callgraph.display d.Callgraph.def_path
                       t.Callgraph.submit_line
                   in
                   let offence =
                     List.fold_left
                       (fun worst (r : Callgraph.reference) ->
                         let candidate =
                           match direct_of ~top r with
                           | Some (c, name, line)
                             when not (Effects.le c Effects.Local_mut) ->
                               Some
                                 ( c,
                                   [
                                     submit_hop;
                                     hop_repr name d.Callgraph.def_path line;
                                   ],
                                   name )
                           | _ -> (
                               match
                                 Taint.resolve cg ~top r.Callgraph.target
                               with
                               | Some callee
                                 when callee <> d.Callgraph.key
                                      && not
                                           (Effects.le (cls_of callee)
                                              Effects.Local_mut) -> (
                                   match Callgraph.find cg callee with
                                   | Some cd ->
                                       let chain, source = chain_of cd in
                                       Some
                                         ( cls_of callee,
                                           submit_hop :: chain,
                                           source )
                                   | None -> None)
                               | _ -> None)
                         in
                         match (worst, candidate) with
                         | None, c -> c
                         | Some _, None -> worst
                         | Some (wc, _, _), Some (cc, _, _) ->
                             if Effects.rank cc > Effects.rank wc then
                               candidate
                             else worst)
                       None t.Callgraph.task_refs
                   in
                   match offence with
                   | None -> worst
                   | Some (c, chain, source) -> (
                       match worst with
                       | None ->
                           Some (t.Callgraph.submit_line, c, chain, source)
                       | Some (_, wc, _, _) ->
                           if Effects.rank c > Effects.rank wc then
                             Some
                               (t.Callgraph.submit_line, c, chain, source)
                           else worst))
                 None d.Callgraph.tasks
               |> Option.map (fun (sl, c, chain, source) ->
                      Printf.sprintf "%s:%d %s %s via %s"
                        d.Callgraph.display sl (Effects.cls_name c) source
                        (String.concat " -> " chain)))
      |> List.sort compare
    in
    (classify_repr, escapes_repr)
end

let live_hop (h : Taint.hop) =
  Frozen.hop_repr h.Taint.name h.Taint.hop_path h.Taint.hop_line

let live_taint ?checked cg =
  Taint.analyze ?checked cg
  |> List.map (fun (f : Taint.finding) ->
         Printf.sprintf "%s <- %s via %s" f.Taint.func.Callgraph.display
           f.Taint.sink
           (String.concat " -> " (List.map live_hop f.Taint.chain)))
  |> List.sort compare

let live_effects cg =
  let classify_repr =
    Effects.classify cg
    |> List.map (fun (i : Effects.info) ->
           Printf.sprintf "%s@%s:%d=%s via %s" i.Effects.def.Callgraph.display
             i.Effects.def.Callgraph.def_path
             i.Effects.def.Callgraph.def_line
             (Effects.cls_name i.Effects.cls)
             (String.concat " -> " (List.map live_hop i.Effects.chain)))
    |> List.sort compare
  in
  let escapes_repr =
    Effects.escapes cg
    |> List.map (fun (f : Effects.finding) ->
           Printf.sprintf "%s:%d %s %s via %s"
             f.Effects.func.Callgraph.display f.Effects.submit_line
             (Effects.cls_name f.Effects.cls) f.Effects.source
             (String.concat " -> " (List.map live_hop f.Effects.chain)))
    |> List.sort compare
  in
  (classify_repr, escapes_repr)

let differential_sources =
  [
    ( "lib/util/util.ml",
      "let shuffle arr =\n\
       \  Array.iteri (fun i _ -> ignore (Random.int (i + 1))) arr\n\
       let tick () = Unix.gettimeofday ()\n" );
    ("lib/drip/drip.ml", "let step order = Util.shuffle order; order\n");
    ( "lib/core/census.ml",
      "let cache = Hashtbl.create 16\n\
       let note k = Hashtbl.replace cache k ()\n\
       let audit c = Util.tick () +. float_of_int c\n\
       let run pool xs = Radio_exec.Pool.map pool ~f:audit xs\n\
       let local xs = Radio_exec.Pool.map pool ~f:(fun x -> x + 1) xs\n" );
  ]

let real_lib_cg () =
  (* Tests run from _build/default/test; the copied source tree sits one
     level up.  Skip (rather than fail) when it is not materialized. *)
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then begin
    let cg = Callgraph.create () in
    Callgraph.add_tree cg "../lib";
    Some cg
  end
  else None

let differential_tests =
  [
    Alcotest.test_case "taint: framework matches the frozen core on \
                        fixtures" `Quick (fun () ->
        let cg = Callgraph.of_sources differential_sources in
        Alcotest.(check (list string))
          "identical findings"
          (Frozen.taint cg) (live_taint cg));
    Alcotest.test_case "effects: framework matches the frozen core on \
                        fixtures" `Quick (fun () ->
        let cg = Callgraph.of_sources differential_sources in
        let fc, fe = Frozen.effects cg in
        let lc, le = live_effects cg in
        Alcotest.(check (list string)) "identical classes" fc lc;
        Alcotest.(check (list string)) "identical escapes" fe le);
    Alcotest.test_case "taint: framework matches the frozen core on the \
                        real lib tree" `Quick (fun () ->
        match real_lib_cg () with
        | None -> ()
        | Some cg ->
            let checked _ = true in
            Alcotest.(check (list string))
              "identical findings"
              (Frozen.taint ~checked cg)
              (live_taint ~checked cg));
    Alcotest.test_case "effects: framework matches the frozen core on \
                        the real lib tree" `Quick (fun () ->
        match real_lib_cg () with
        | None -> ()
        | Some cg ->
            let fc, fe = Frozen.effects cg in
            let lc, le = live_effects cg in
            Alcotest.(check (list string)) "identical classes" fc lc;
            Alcotest.(check (list string)) "identical escapes" fe le);
  ]

(* ------------------------------------------------------------------ *)
(* SARIF + baseline (Driver)                                           *)
(* ------------------------------------------------------------------ *)

let sample_findings =
  [
    {
      Driver.rule = "random";
      path = "lib/core/foo.ml";
      line = 3;
      message = "a \"quoted\" diagnostic";
      fingerprint = "random:lib/core/foo.ml:3";
      related = [];
    };
    {
      Driver.rule = "taint";
      path = "lib/drip/drip.ml";
      line = 1;
      message = "Drip.step → Util.shuffle → Random.int";
      fingerprint = "taint:lib/drip/drip.ml:Drip.step:Random.int";
      related = [];
    };
  ]

let sarif_tests =
  [
    Alcotest.test_case "SARIF carries the required 2.1.0 fields" `Quick
      (fun () ->
        let doc = Driver.to_sarif sample_findings in
        let has n = Alcotest.(check bool) n true (contains ~needle:n doc) in
        has "\"$schema\":";
        has "sarif-schema-2.1.0.json";
        has "\"version\":\"2.1.0\"";
        has "\"runs\":";
        has "\"tool\":{\"driver\":{\"name\":\"radiolint\"";
        has "\"rules\":[";
        has "\"results\":[";
        has "\"ruleId\":\"random\"";
        has "\"level\":\"error\"";
        has "\"message\":{\"text\":\"a \\\"quoted\\\" diagnostic\"}";
        has "\"artifactLocation\":{\"uri\":\"lib/core/foo.ml\"}";
        has "\"region\":{\"startLine\":3}";
        has
          "\"partialFingerprints\":{\"radiolint/v1\":\"taint:lib/drip/drip.ml:Drip.step:Random.int\"}");
    Alcotest.test_case "effect findings carry an effectClass property" `Quick
      (fun () ->
        let doc =
          Driver.to_sarif
            [
              {
                Driver.rule = "effect";
                path = "lib/analysis/foo.ml";
                line = 4;
                message = "Pool task reaches SharedMut state Foo.cache";
                fingerprint = "effect:lib/analysis/foo.ml:Foo.go:SharedMut";
                related = [];
              };
            ]
        in
        Alcotest.(check bool)
          "properties bag present" true
          (contains ~needle:"\"properties\":{\"effectClass\":\"SharedMut\"}"
             doc);
        (* Non-effect findings carry no properties bag. *)
        let plain = Driver.to_sarif sample_findings in
        Alcotest.(check bool)
          "absent elsewhere" false
          (contains ~needle:"\"properties\"" plain));
    Alcotest.test_case "witness chains become relatedLocations" `Quick
      (fun () ->
        let doc =
          Driver.to_sarif
            [
              {
                Driver.rule = "taint";
                path = "lib/drip/drip.ml";
                line = 1;
                message = "Drip.step → Util.shuffle → Random.int";
                fingerprint = "taint:lib/drip/drip.ml:Drip.step:Random.int";
                related =
                  [
                    ("lib/drip/drip.ml", 1, "Drip.step");
                    ("lib/util/util.ml", 2, "Random.int");
                  ];
              };
            ]
        in
        let has n = Alcotest.(check bool) n true (contains ~needle:n doc) in
        has "\"relatedLocations\":[";
        has "\"artifactLocation\":{\"uri\":\"lib/util/util.ml\"}";
        has "\"region\":{\"startLine\":2}";
        has "\"message\":{\"text\":\"Random.int\"}";
        (* Chainless findings carry no relatedLocations at all. *)
        Alcotest.(check bool)
          "absent elsewhere" false
          (contains ~needle:"relatedLocations"
             (Driver.to_sarif sample_findings)));
    Alcotest.test_case "empty finding set is still a complete document"
      `Quick (fun () ->
        let doc = Driver.to_sarif [] in
        Alcotest.(check bool)
          "results empty" true
          (contains ~needle:"\"results\":[]" doc);
        Alcotest.(check bool)
          "version present" true
          (contains ~needle:"\"version\":\"2.1.0\"" doc));
  ]

let baseline_tests =
  [
    Alcotest.test_case "baselined fingerprints are suppressed" `Quick
      (fun () ->
        let scan = { Driver.findings = sample_findings; skipped = [] } in
        let scan', suppressed =
          Driver.apply_baseline
            ~baseline:[ "taint:lib/drip/drip.ml:Drip.step:Random.int" ]
            scan
        in
        Alcotest.(check int) "one suppressed" 1 suppressed;
        Alcotest.(check (list string))
          "the other survives"
          [ "random:lib/core/foo.ml:3" ]
          (List.map (fun f -> f.Driver.fingerprint) scan'.Driver.findings));
    Alcotest.test_case "load_baseline skips comments and blanks" `Quick
      (fun () ->
        let file = Filename.temp_file "radiolint" ".baseline" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            write file "# header\n\nrandom:lib/core/foo.ml:3\n  \n# tail\n";
            Alcotest.(check (list string))
              "one fingerprint"
              [ "random:lib/core/foo.ml:3" ]
              (Driver.load_baseline file)));
    Alcotest.test_case "baseline_lines are sorted and deduplicated" `Quick
      (fun () ->
        Alcotest.(check (list string))
          "sorted unique"
          [
            "random:lib/core/foo.ml:3";
            "taint:lib/drip/drip.ml:Drip.step:Random.int";
          ]
          (Driver.baseline_lines (sample_findings @ sample_findings)));
    Alcotest.test_case "stale entries are reported per analysis depth" `Quick
      (fun () ->
        let scan = { Driver.findings = sample_findings; skipped = [] } in
        let baseline =
          [
            "random:lib/core/foo.ml:3" (* matches *);
            "random:lib/gone.ml:9" (* stale at any depth *);
            "taint:lib/drip/drip.ml:Drip.step:Random.int" (* matches *);
            "taint:lib/gone.ml:Gone.f:Random.int" (* stale only when deep *);
            "effect:lib/gone.ml:Gone.g:IO" (* stale only when effects ran *);
          ]
        in
        Alcotest.(check (list string))
          "shallow scan cannot disprove interprocedural entries"
          [ "random:lib/gone.ml:9" ]
          (Driver.stale_baseline ~baseline scan);
        Alcotest.(check (list string))
          "effects scan adds effect entries"
          [ "random:lib/gone.ml:9"; "effect:lib/gone.ml:Gone.g:IO" ]
          (Driver.stale_baseline ~effects:true ~baseline scan);
        Alcotest.(check (list string))
          "deep scan vets everything"
          [
            "random:lib/gone.ml:9";
            "taint:lib/gone.ml:Gone.f:Random.int";
            "effect:lib/gone.ml:Gone.g:IO";
          ]
          (Driver.stale_baseline ~deep:true ~baseline scan));
    Alcotest.test_case "driver falls back to textual rules" `Quick (fun () ->
        with_temp_tree (fun ~dir:_ ~core ->
            (* Unparseable on purpose: the textual layer still sees the
               stray PRNG call. *)
            write (Filename.concat core "broken.ml")
              "let = Random.int 10 (* no binding name: parse error *)\n";
            write (Filename.concat core "broken.mli") "";
            let fs = Driver.lint_file (Filename.concat core "broken.ml") in
            Alcotest.(check bool)
              "random still fires" true
              (List.exists (fun f -> f.Driver.rule = "random") fs)));
  ]

(* ------------------------------------------------------------------ *)
(* Layer 1: model-conformance checker                                  *)
(* ------------------------------------------------------------------ *)

(* A 4-cycle with staggered tags: feasible, collision-free beacon probes. *)
let cycle4 = C.create (G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ])
    [| 0; 1; 2; 3 |]

(* Two nodes joined by an edge, waking together: simultaneous transmissions
   and a clean double-transmitter round. *)
let pair = C.create (G.of_edges 2 [ (0, 1) ]) [| 0; 0 |]

let run ?(config = cycle4) proto =
  Engine.run ~max_rounds:1_000 ~record_trace:true proto config

let check_ok name report =
  Alcotest.(check string) name "no violations" (Report.to_string report)

let has_check name vs =
  List.exists (fun v -> v.Report.check = name) vs

let clean_tests =
  [
    Alcotest.test_case "beacon outcome validates" `Quick (fun () ->
        let proto = P.beacon () in
        check_ok "beacon" (Invariants.validate ~protocol:proto (run proto)));
    Alcotest.test_case "silent outcome validates" `Quick (fun () ->
        let proto = P.silent ~lifetime:3 () in
        check_ok "silent" (Invariants.validate ~protocol:proto (run proto)));
    Alcotest.test_case "colliding pair validates" `Quick (fun () ->
        let proto = P.beacon ~delay:1 () in
        check_ok "pair"
          (Invariants.validate ~protocol:proto (run ~config:pair proto)));
    Alcotest.test_case "cut-off run validates" `Quick (fun () ->
        let proto = P.silent ~lifetime:100 () in
        let o = Engine.run ~max_rounds:10 ~record_trace:true proto cycle4 in
        Alcotest.(check bool) "not terminated" false o.Engine.all_terminated;
        check_ok "cutoff" (Invariants.validate ~protocol:proto o));
  ]

(* A deterministic-looking protocol whose instances share a spawn counter:
   exactly the shared mutable state protocol.mli forbids.  Every node
   transmits its spawn index, so nodes with identical histories act
   differently and a fresh replay diverges. *)
let shared_state_protocol () =
  let spawned = ref 0 in
  {
    P.name = "shared-spawn-counter";
    spawn =
      (fun () ->
        incr spawned;
        let me = string_of_int !spawned in
        let rounds = ref 0 in
        {
          P.on_wakeup = (fun _ -> ());
          decide =
            (fun () ->
              if !rounds = 0 then P.Transmit me else P.Terminate);
          observe = (fun _ -> incr rounds);
        });
  }

(* A protocol whose behaviour flips between whole runs: nondeterminism that
   only the rerun check can see. *)
let run_flipping_protocol () =
  let first_run = ref true in
  {
    P.name = "run-flipper";
    spawn =
      (fun () ->
        let transmit = !first_run in
        let rounds = ref 0 in
        {
          P.on_wakeup = (fun _ -> first_run := false);
          decide =
            (fun () ->
              if !rounds = 0 && transmit then P.Transmit "x"
              else if !rounds >= 1 then P.Terminate
              else P.Listen);
          observe = (fun _ -> incr rounds);
        });
  }

let broken_protocol_tests =
  [
    Alcotest.test_case "shared spawn state is flagged" `Quick (fun () ->
        let proto = shared_state_protocol () in
        let o = run ~config:pair proto in
        let vs = Invariants.validate ~protocol:proto o in
        Alcotest.(check bool) "replay diverges" true
          (has_check "purity.replay" vs);
        Alcotest.(check bool) "anonymity broken" true
          (has_check "anonymity" vs));
    Alcotest.test_case "cross-run nondeterminism is flagged" `Quick (fun () ->
        let proto = run_flipping_protocol () in
        let o = run proto in
        let vs = Purity.rerun proto o in
        Alcotest.(check bool) "rerun diverges" true
          (has_check "purity.rerun" vs));
  ]

let corrupted_outcome_tests =
  [
    Alcotest.test_case "post-terminate transmission is flagged" `Quick
      (fun () ->
        (* The engine can never produce this (it stops consulting an
           instance after Terminate), so corrupt a real outcome: pretend
           node 0 terminated before its recorded transmission. *)
        let o = run (P.beacon ()) in
        o.Engine.done_local.(0) <- 1;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "termination permanence" true
          (has_check "termination-permanence" vs));
    Alcotest.test_case "corrupted reception entry is flagged" `Quick
      (fun () ->
        let o = run (P.beacon ()) in
        (* Node 1 is woken by node 0's lone beacon; forge a collision. *)
        o.Engine.histories.(1).(1) <- H.Collision;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "collision semantics" true
          (has_check "collision-semantics" vs));
    Alcotest.test_case "corrupted wake-up kind is flagged" `Quick (fun () ->
        let o = run (P.beacon ()) in
        let v =
          match Array.to_list o.Engine.forced |> List.mapi (fun i f -> (i, f))
                |> List.find_opt (fun (_, f) -> f)
          with
          | Some (v, _) -> v
          | None -> Alcotest.fail "expected a forced wake-up"
        in
        o.Engine.forced.(v) <- false;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "wakeup kind" true (has_check "wakeup" vs));
    Alcotest.test_case "truncated history is flagged" `Quick (fun () ->
        let o = run (P.silent ~lifetime:2 ()) in
        o.Engine.done_local.(2) <- o.Engine.done_local.(2) + 1;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "history length" true
          (has_check "history-length" vs));
    Alcotest.test_case "corrupted all_terminated is flagged" `Quick (fun () ->
        let o = run (P.beacon ()) in
        o.Engine.done_local.(3) <- -1;
        let vs = Invariants.validate o in
        Alcotest.(check bool) "termination consistency" true
          (has_check "termination" vs));
  ]

(* ------------------------------------------------------------------ *)
(* Layer 1, perturbed model: validate_faulty                           *)
(* ------------------------------------------------------------------ *)

module FP = Radio_faults.Fault_plan
module FE = Radio_faults.Faulty_engine

let frun ?(config = cycle4) plan proto =
  FE.run ~max_rounds:1_000 ~record_trace:true plan proto config

(* Node 1 (tag 1) wakes in round 1 and crash-stops in round 3, mid-run. *)
let crash_plan = [ FP.Crash { node = 1; round = 3 } ]

let faulty_clean_tests =
  [
    Alcotest.test_case "crashed run validates" `Quick (fun () ->
        let proto = P.silent ~lifetime:5 () in
        let fo = frun crash_plan proto in
        Alcotest.(check int) "crashed mid-run" 3 fo.FE.crashed_at.(1);
        check_ok "crash" (Invariants.validate_faulty ~protocol:proto fo));
    Alcotest.test_case "mixed-plan run validates" `Quick (fun () ->
        let proto = P.beacon () in
        let plan =
          [
            FP.Noise { node = 3; round = 1 };
            FP.Drop { src = 0; dst = 1; round = 1 };
            FP.Jitter { node = 2; delta = 1 };
          ]
        in
        let fo = frun plan proto in
        check_ok "mixed" (Invariants.validate_faulty ~protocol:proto fo));
    Alcotest.test_case "empty plan delegates to validate" `Quick (fun () ->
        let proto = P.beacon () in
        let fo = frun FP.empty proto in
        Alcotest.(check bool) "nothing fired" true (fo.FE.ledger = []);
        check_ok "empty" (Invariants.validate_faulty ~protocol:proto fo));
  ]

let faulty_corrupted_tests =
  [
    Alcotest.test_case "crashed node marked terminated is flagged" `Quick
      (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        fo.FE.base.Engine.done_local.(1) <- 2;
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "termination" true (has_check "termination" vs));
    Alcotest.test_case "history past the crash round is flagged" `Quick
      (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        (* Node 1 woke in round 1 and crashed in round 3: two entries.
           Pretending it crashed a round earlier truncates nothing, so the
           recorded history is now one entry too long. *)
        fo.FE.crashed_at.(1) <- 2;
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "crash-silence" true
          (has_check "crash-silence" vs));
    Alcotest.test_case "forged ledger entry is flagged" `Quick (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        let forged =
          {
            FE.round = 0;
            fault = FP.Noise { node = 0; round = 0 };
            observed_by = [ 0 ];
          }
        in
        let fo = { fo with FE.ledger = fo.FE.ledger @ [ forged ] } in
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "fault-ledger" true (has_check "fault-ledger" vs));
    Alcotest.test_case "unscheduled crashed_at entry is flagged" `Quick
      (fun () ->
        let fo = frun crash_plan (P.silent ~lifetime:5 ()) in
        fo.FE.crashed_at.(0) <- 2;
        let vs = Invariants.validate_faulty fo in
        Alcotest.(check bool) "fault-ledger" true (has_check "fault-ledger" vs));
  ]

let () =
  Alcotest.run "lint"
    [
      ("rule-random", random_tests);
      ("rule-obj-magic", obj_magic_tests);
      ("rule-physical-equality", physical_eq_tests);
      ("rule-hashtbl-iteration", hashtbl_tests);
      ("rule-fault-purity", fault_purity_tests);
      ("rule-missing-mli", missing_mli_tests);
      ("strip-quoted-strings", quoted_string_tests);
      ("ast-ported-rules", ast_ported_tests);
      ("ast-only-rules", ast_only_tests);
      ("rule-polymorphic-compare", poly_compare_tests);
      ("rule-domain-safety", domain_safety_tests);
      ("taint", taint_tests);
      ("effect-classes", effect_class_tests);
      ("effect-escapes", effect_escape_tests);
      ("ranges", ranges_tests);
      ("partiality", partiality_tests);
      ("dataflow-differential", differential_tests);
      ("sarif", sarif_tests);
      ("baseline", baseline_tests);
      ("invariants-clean", clean_tests);
      ("invariants-broken-protocols", broken_protocol_tests);
      ("invariants-corrupted-outcomes", corrupted_outcome_tests);
      ("invariants-faulty-clean", faulty_clean_tests);
      ("invariants-faulty-corrupted", faulty_corrupted_tests);
    ]
