(* The bounded model checker (lib/mc): differential agreement with the
   classifier over the exhaustive small-configuration universe, bit-for-bit
   counterexample replay through the engine, mutant detection, and the
   symmetry-reduction quotient. *)

module C = Radio_config.Config
module F = Radio_config.Families
module G = Radio_graph.Graph
module Cl = Election.Classifier
module Fast = Election.Fast_classifier
module Sym = Election.Symmetry
module Lint = Radio_lint.Invariants
module State = Radio_mc.State
module Machine = Radio_mc.Machine
module Checker = Radio_mc.Checker
module Mutant = Radio_mc.Mutant
module Oracle = Radio_mc.Oracle

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let uniform_cycle n = C.uniform (Radio_graph.Gen.cycle n) 0

(* --- State encoding ------------------------------------------------- *)

let state_tests =
  [
    Alcotest.test_case "interner is a hash-cons" `Quick (fun () ->
        let i = State.Intern.create () in
        let k1 = State.Intern.get i 0 State.E_silence in
        let k2 = State.Intern.get i 0 State.E_silence in
        let k3 = State.Intern.get i k1 (State.E_message "1") in
        let k4 = State.Intern.get i k1 (State.E_message "1") in
        let k5 = State.Intern.get i k1 (State.E_message "2") in
        check_int "same pair same key" k1 k2;
        check_int "same message same key" k3 k4;
        check "distinct message distinct key" true (k4 <> k5);
        check_int "three keys interned" 3 (State.Intern.size i));
    Alcotest.test_case "history materialization" `Quick (fun () ->
        let i = State.Intern.create () in
        let k1 = State.Intern.get i 0 (State.E_message "m") in
        let k2 = State.Intern.get i k1 State.E_collision in
        let k3 = State.Intern.get i k2 State.E_silence in
        let h = State.Intern.history i k3 in
        check_int "depth" 3 (State.Intern.depth i k3);
        check "entries" true
          (Radio_drip.History.equal h
             [|
               Radio_drip.History.Message "m";
               Radio_drip.History.Collision;
               Radio_drip.History.Silence;
             |]));
    Alcotest.test_case "canonicalize picks the orbit minimum" `Quick
      (fun () ->
        let config = uniform_cycle 4 in
        let autos = Sym.automorphisms config in
        check_int "C4 has the dihedral group" 8 (List.length autos);
        let s = [| 3; 1; 1; 1 |] in
        let canon = State.canonicalize autos s in
        check "canonical is minimal" true
          (State.equal canon [| 1; 1; 1; 3 |]);
        (* every permuted variant canonicalizes identically *)
        List.iter
          (fun phi ->
            check "orbit collapses" true
              (State.equal canon
                 (State.canonicalize autos (State.permute phi s))))
          autos);
    Alcotest.test_case "encode separates round classes" `Quick (fun () ->
        let s = [| 1; 0 |] in
        check "same state, different round class" true
          (State.encode ~round_class:0 s <> State.encode ~round_class:1 s);
        check "same round class" true
          (String.equal
             (State.encode ~round_class:2 s)
             (State.encode ~round_class:2 [| 1; 0 |])));
  ]

(* --- Automorphism groups -------------------------------------------- *)

let symmetry_tests =
  [
    Alcotest.test_case "asymmetric config has only the identity" `Quick
      (fun () ->
        let autos = Sym.automorphisms (F.h_family 2) in
        check_int "trivial group" 1 (List.length autos);
        check "identity" true
          (match autos with
          | [ phi ] -> Array.for_all (fun v -> phi.(v) = v) (Array.mapi (fun i _ -> i) phi)
          | _ -> false));
    Alcotest.test_case "s-family path has the reversal" `Quick (fun () ->
        let autos = Sym.automorphisms (F.s_family 2) in
        check_int "id + reversal" 2 (List.length autos));
    Alcotest.test_case "every listed permutation is an automorphism" `Quick
      (fun () ->
        let config = uniform_cycle 5 in
        let g = C.graph config in
        List.iter
          (fun phi ->
            List.iter
              (fun (u, v) ->
                check "edge preserved" true (G.mem_edge g phi.(u) phi.(v)))
              (G.edges g))
          (Sym.automorphisms config));
  ]

(* --- Protocol-mode verification ------------------------------------- *)

let feasible_config = F.h_family 2
let infeasible_config = F.s_family 2

let verify_tests =
  [
    Alcotest.test_case "feasible family elects the canonical leader" `Quick
      (fun () ->
        let res = Checker.verify feasible_config in
        match res.Checker.verdict with
        | Checker.Elected { leader; round } ->
            let expected =
              match Cl.canonical_leader (Fast.classify feasible_config) with
              | Some l -> l
              | None -> Alcotest.fail "family must be feasible"
            in
            check_int "canonical leader" expected leader;
            let n = C.size feasible_config in
            let sigma = C.span feasible_config in
            check "within the O(n^2 sigma) bound" true
              (round <= Checker.global_bound ~n ~sigma)
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
    Alcotest.test_case "infeasible family reaches a symmetric state" `Quick
      (fun () ->
        let res = Checker.verify infeasible_config in
        match res.Checker.verdict with
        | Checker.Non_election { classes } ->
            check "at least one class" true (List.length classes >= 1);
            List.iter
              (fun cls ->
                check "no singleton history class" true
                  (List.length cls >= 2))
              classes
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
    Alcotest.test_case "counterexample trace replays bit-for-bit" `Quick
      (fun () ->
        List.iter
          (fun config ->
            let machine = Machine.drip config in
            let res = Checker.verify ~machine config in
            let rp = Checker.replay ~machine res in
            check "trace equality" true rp.Checker.trace_matches;
            check "model validation" true
              (Radio_lint.Report.ok rp.Checker.report))
          [ feasible_config; infeasible_config; F.g_family 2; F.h_family 1 ]);
    Alcotest.test_case "depth budget trips" `Quick (fun () ->
        let res = Checker.verify ~depth:1 feasible_config in
        check "exhausted" true
          (match res.Checker.verdict with
          | Checker.Exhausted `Depth -> true
          | _ -> false));
    Alcotest.test_case "pure-drip machine agrees with drip" `Quick (fun () ->
        let r1 = Checker.verify ~machine:(Machine.drip feasible_config) feasible_config in
        let r2 =
          Checker.verify
            ~machine:(Machine.pure_drip feasible_config)
            feasible_config
        in
        check "same trace" true
          (Checker.trace_equal r1.Checker.trace r2.Checker.trace));
    Alcotest.test_case "wave machine verifies on its domain" `Quick (fun () ->
        (* a depth-tagged star: node 0 tag 0, leaves woken by the wave *)
        let g = Radio_graph.Gen.star 4 in
        let config = C.create g [| 0; 1; 1; 1 |] in
        check "wave applies" true (Election.Wave_election.applies config);
        let machine =
          match Machine.of_name config "wave" with
          | Some m -> m
          | None -> Alcotest.fail "registry must know wave"
        in
        let res = Checker.check ~machine config in
        match res.Checker.verdict with
        | Checker.Elected { leader; _ } -> check_int "wave leader" 0 leader
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
  ]

(* --- Mutants --------------------------------------------------------- *)

let mutant_tests =
  [
    Alcotest.test_case "greedy decision mutant violates safety" `Quick
      (fun () ->
        let machine = Mutant.greedy_decision feasible_config in
        let res = Checker.check ~machine feasible_config in
        (match res.Checker.verdict with
        | Checker.Violated (Checker.Two_leaders ls) ->
            check "at least two leaders" true (List.length ls >= 2)
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
        (* The action schedule is the canonical DRIP's, so the trace is a
           valid execution: check-trace passes, as the verdict predicts. *)
        let rp = Checker.replay ~machine res in
        check "trace equality" true rp.Checker.trace_matches;
        check "replay passes validation" true
          (Radio_lint.Report.ok rp.Checker.report));
    Alcotest.test_case "early-stop mutant breaks liveness" `Quick (fun () ->
        let machine = Mutant.early_stop feasible_config in
        let res = Checker.verify ~machine feasible_config in
        (match res.Checker.verdict with
        | Checker.Violated Checker.No_leader_on_feasible -> ()
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
        (* Replaying under the mutant itself is bit-for-bit clean... *)
        let rp = Checker.replay ~machine res in
        check "trace equality" true rp.Checker.trace_matches;
        check "self-replay passes" true
          (Radio_lint.Report.ok rp.Checker.report);
        (* ...but the same outcome validated against the healthy canonical
           protocol fails check-trace, exactly as the verdict predicts. *)
        let healthy = (Machine.drip feasible_config).Machine.protocol in
        check "fails against healthy protocol" false
          (Radio_lint.Report.ok
             (Lint.validate ~protocol:healthy rp.Checker.outcome)));
  ]

(* --- Packed codes and the compact visited set ------------------------ *)

module Visited = Radio_mc.Visited
module Pool = Radio_exec.Pool

(* The oracle's exhaustive universe, rebuilt: every connected graph on
   [n <= 4] nodes (up to isomorphism) crossed with every tag census of
   span [<= 2]. *)
let small_configs () =
  List.concat_map
    (fun n ->
      let tagss = Election.Census.tag_assignments ~n ~max_span:2 in
      List.concat_map
        (fun g -> List.map (fun tags -> C.create g (Array.copy tags)) tagss)
        (Radio_graph.Enumerate.connected_up_to_iso n))
    [ 1; 2; 3; 4 ]

(* Deterministic slot material covering every sign/magnitude shape a
   reachable state can hold (asleep, small running keys, terminated
   negatives, multi-byte varint keys). *)
let slot_pool = [| 0; 1; 2; -1; -2; 5; -7; 300; -300; 40_000 |]

let synth_state ~n i =
  Array.init n (fun v -> slot_pool.((i * 7 + v * 3 + (i / 11)) mod 10))

let packed_tests =
  [
    Alcotest.test_case "zigzag is the standard bijection" `Quick (fun () ->
        let open State.Packed in
        List.iter
          (fun (signed, unsigned) ->
            check_int "zigzag" unsigned (zigzag signed);
            check_int "unzigzag" signed (unzigzag unsigned))
          [ (0, 0); (-1, 1); (1, 2); (-2, 3); (2, 4); (123456, 246912) ];
        List.iter
          (fun k -> check_int "roundtrip" k (unzigzag (zigzag k)))
          [ 0; 1; -1; 17; -17; 40_000; -40_000; max_int; min_int + 1 ]);
    Alcotest.test_case "pack/unpack roundtrip" `Quick (fun () ->
        for n = 1 to 6 do
          for i = 0 to 199 do
            let s = synth_state ~n i in
            let round_class = i mod 3 and spent = i mod 2 in
            let code = State.Packed.pack ~round_class ~spent s in
            check "code within bound" true
              (Bytes.length code <= State.Packed.max_bytes ~n);
            let rc', spent', s' = State.Packed.unpack ~n code in
            check_int "round class survives" round_class rc';
            check_int "spent survives" spent spent';
            check "slots survive" true (State.equal s s')
          done
        done);
    Alcotest.test_case "write agrees with pack at any offset" `Quick
      (fun () ->
        let s = [| 3; 0; -5; 40_000 |] in
        let code = State.Packed.pack ~round_class:2 ~spent:1 s in
        let buf = Bytes.make (16 + State.Packed.max_bytes ~n:4) '\xff' in
        let stop = State.Packed.write buf ~pos:16 ~round_class:2 ~spent:1 s in
        check_int "length" (Bytes.length code) (stop - 16);
        check "bytes equal" true
          (Bytes.equal code (Bytes.sub buf 16 (Bytes.length code))));
    Alcotest.test_case "visited set agrees with the legacy boxed path"
      `Quick
      (fun () ->
        (* Differential test over the full n <= 4 configuration universe:
           the packed open-addressing set must draw exactly the separations
           the old [State.encode]-keyed hashtable drew, on canonicalized
           states (pack after canonicalize = the legacy boxed key). *)
        let configs = small_configs () in
        check "universe rebuilt" true (List.length configs = 434);
        List.iter
          (fun config ->
            let n = C.size config in
            let autos = Sym.automorphisms config in
            let visited = Visited.create ~bits:4 ~slots:n () in
            let legacy = Hashtbl.create 64 in
            for i = 0 to 99 do
              let round_class = i mod 3 and spent = i mod 2 in
              let canon = State.canonicalize autos (synth_state ~n i) in
              let key =
                Printf.sprintf "%d|%d|%s" round_class spent
                  (State.encode ~round_class canon)
              in
              check "mem agrees before insert"
                (Hashtbl.mem legacy key)
                (Visited.mem visited ~round_class ~spent canon);
              let fresh = Visited.add visited ~round_class ~spent canon in
              check "add reports freshness" (not (Hashtbl.mem legacy key))
                fresh;
              Hashtbl.replace legacy key ();
              check "mem sees the insert" true
                (Visited.mem visited ~round_class ~spent canon)
            done;
            check_int "same cardinality" (Hashtbl.length legacy)
              (Visited.size visited))
          configs);
    Alcotest.test_case "iter recovers every packed entry" `Quick (fun () ->
        (* Push the set through several table doublings and arena growths,
           then unpack everything back out. *)
        let n = 3 in
        let visited = Visited.create ~bits:4 ~slots:n () in
        let reference = Hashtbl.create 64 in
        for i = 0 to 9_999 do
          let s = [| i - 5_000; (i * 17) - 80_000; i mod 7 |] in
          let round_class = i mod 5 and spent = i mod 3 in
          check "all fresh" true (Visited.add visited ~round_class ~spent s);
          Hashtbl.replace reference
            (Printf.sprintf "%d|%d|%s" round_class spent
               (State.encode ~round_class s))
            ()
        done;
        check_int "all held" 10_000 (Visited.size visited);
        check "footprint reported" true (Visited.memory_bytes visited > 0);
        let seen = ref 0 in
        Visited.iter visited ~slots:n ~f:(fun ~round_class ~spent s ->
            incr seen;
            check "entry known" true
              (Hashtbl.mem reference
                 (Printf.sprintf "%d|%d|%s" round_class spent
                    (State.encode ~round_class s))));
        check_int "iter visits everything" 10_000 !seen);
  ]


(* --- Arena growth boundaries and varint width thresholds ------------- *)

let visited_edge_tests =
  [
    Alcotest.test_case "duplicate rollback across arena growth boundaries"
      `Quick (fun () ->
        (* [add] packs speculatively past [len] before probing, so a
           duplicate attempt can itself trigger an arena reallocation and
           must then roll back — leaving len, count and every published
           entry intact.  Walk enough distinct states to cross several
           doublings, re-adding an old state before every insert, and
           demand that at least one of those duplicate probes landed
           exactly on a growth boundary (memory grew while add returned
           false). *)
        let n = 3 in
        let visited = Visited.create ~bits:4 ~slots:n () in
        let state i = [| i - 700; (i * 17) - 9_000; (i mod 7) - 3 |] in
        let dup_growths = ref 0 in
        for i = 0 to 1_499 do
          if i > 0 then begin
            let before = Visited.memory_bytes visited in
            let s = state (i / 2) in
            check "duplicate rejected" false
              (Visited.add visited ~round_class:0 ~spent:0 s);
            if Visited.memory_bytes visited > before then
              incr dup_growths;
            check "duplicate still member" true
              (Visited.mem visited ~round_class:0 ~spent:0 s)
          end;
          check "fresh state accepted" true
            (Visited.add visited ~round_class:0 ~spent:0 (state i));
          check_int "count tracks inserts" (i + 1) (Visited.size visited)
        done;
        check "a duplicate probe grew the arena" true (!dup_growths > 0);
        (* Nothing was corrupted by the speculative writes: every entry
           unpacks back out exactly once. *)
        let seen = Hashtbl.create 64 in
        Visited.iter visited ~slots:n ~f:(fun ~round_class ~spent s ->
            check_int "round class" 0 round_class;
            check_int "spent" 0 spent;
            Hashtbl.replace seen (State.encode ~round_class s) ());
        check_int "iter recovers every entry" 1_500 (Hashtbl.length seen);
        for i = 0 to 1_499 do
          check "entry survives growth" true
            (Hashtbl.mem seen (State.encode ~round_class:0 (state i)))
        done);
    Alcotest.test_case "slot codes change width exactly at the varint \
                        thresholds" `Quick (fun () ->
        (* zigzag maps k to 2|k| - (k < 0): the 1->2 byte boundary sits at
           zigzag = 0x7f/0x80, i.e. k = -64 vs 64, and the 2->3 byte
           boundary at k = -8192 vs 8192. *)
        let code_len k =
          Bytes.length (State.Packed.pack ~round_class:0 ~spent:0 [| k |])
        in
        let base = code_len 0 in
        List.iter
          (fun (k, extra) -> check_int "code width" (base + extra)
            (code_len k))
          [
            (63, 0); (-64, 0); (64, 1); (-65, 1);
            (8_191, 1); (-8_192, 1); (8_192, 2); (-8_193, 2);
          ];
        (* States straddling a threshold stay distinct in the set. *)
        let visited = Visited.create ~bits:3 ~slots:1 () in
        List.iter
          (fun k ->
            check "fresh across the boundary" true
              (Visited.add visited ~round_class:0 ~spent:0 [| k |]))
          [ -64; 64; -65; 63; -8_192; 8_192 ];
        check_int "all six held" 6 (Visited.size visited));
    Alcotest.test_case "create rejects widths the entry header cannot \
                        hold" `Quick (fun () ->
        check "reasonable width accepted" true
          (Visited.size (Visited.create ~slots:6_551 ()) = 0);
        match Visited.create ~slots:7_000 () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "7000-slot width must be rejected");
  ]

(* --- Universal mode and the symmetry quotient ------------------------ *)

let stats_equal (a : Checker.stats) (b : Checker.stats) =
  a.Checker.states_explored = b.Checker.states_explored
  && a.Checker.states_raw = b.Checker.states_raw
  && a.Checker.peak_frontier = b.Checker.peak_frontier
  && a.Checker.depth_reached = b.Checker.depth_reached
  && a.Checker.distinct_keys = b.Checker.distinct_keys
  && a.Checker.automorphisms = b.Checker.automorphisms
  && a.Checker.canonicalizations = b.Checker.canonicalizations
  && a.Checker.visited_bytes = b.Checker.visited_bytes

let exploration_equal (a : Checker.exploration) (b : Checker.exploration) =
  stats_equal a.Checker.stats b.Checker.stats
  && (match (a.Checker.separated_at, b.Checker.separated_at) with
     | None, None -> true
     | Some x, Some y -> x = y
     | _ -> false)
  &&
  match (a.Checker.exhausted, b.Checker.exhausted) with
  | None, None | Some `Depth, Some `Depth | Some `States, Some `States ->
      true
  | _ -> false

let explore_tests =
  [
    Alcotest.test_case "fault-free anonymous states are symmetric" `Quick
      (fun () ->
        (* Lockstep classes keep every reachable state automorphism-
           invariant, so the quotient changes nothing — the checker's
           restatement of the paper's symmetry impossibility. *)
        let config = uniform_cycle 4 in
        let on = Checker.explore ~depth:6 ~reduction:true config in
        let off = Checker.explore ~depth:6 ~reduction:false config in
        check "group found" true (on.Checker.stats.Checker.automorphisms > 1);
        check_int "identical visited sets"
          off.Checker.stats.Checker.states_explored
          on.Checker.stats.Checker.states_explored);
    Alcotest.test_case "symmetry reduction shrinks the visited set" `Quick
      (fun () ->
        (* A crash adversary names concrete nodes, breaking lockstep:
           killing automorphic twins yields automorphic sibling states the
           quotient collapses. *)
        let config = uniform_cycle 4 in
        let on = Checker.explore ~depth:6 ~faults:1 ~reduction:true config in
        let off =
          Checker.explore ~depth:6 ~faults:1 ~reduction:false config
        in
        check "group found" true (on.Checker.stats.Checker.automorphisms > 1);
        check "strictly fewer states" true
          (on.Checker.stats.Checker.states_explored
          < off.Checker.stats.Checker.states_explored);
        check "same separation verdict" true
          (match (on.Checker.separated_at, off.Checker.separated_at) with
          | None, None -> true
          | Some a, Some b -> a = b
          | _ -> false);
        check "peak frontier recorded" true
          (on.Checker.stats.Checker.peak_frontier >= 1));
    Alcotest.test_case "uniform cycle never separates" `Quick (fun () ->
        let e = Checker.explore ~depth:8 (uniform_cycle 4) in
        check "no separation" true (Option.is_none e.Checker.separated_at));
    Alcotest.test_case "feasible family separates" `Quick (fun () ->
        let e = Checker.explore ~depth:12 (F.h_family 1) in
        check "separates" true (Option.is_some e.Checker.separated_at));
    Alcotest.test_case "state budget trips" `Quick (fun () ->
        let e = Checker.explore ~depth:20 ~states:1 (uniform_cycle 4) in
        check "exhausted" true
          (match e.Checker.exhausted with
          | Some `States -> true
          | _ -> false));
    Alcotest.test_case "parallel explore is bit-identical at any job count"
      `Quick
      (fun () ->
        (* The determinism contract: constant-size waves, per-chunk intern
           views committed in submission order — every stats field, the
           separation round and the budget verdict must coincide between
           the sequential path and every pool size. *)
        let config = F.h_family 2 in
        let base = Checker.explore ~depth:6 ~faults:1 config in
        check "reference run separates" true
          (Option.is_some base.Checker.separated_at);
        check "reference run is parallel-sized" true
          (base.Checker.stats.Checker.peak_frontier
          >= Pool.min_parallel_batch);
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs (fun pool ->
                let e = Checker.explore ~depth:6 ~faults:1 ~pool config in
                check
                  (Printf.sprintf "identical exploration at jobs %d" jobs)
                  true
                  (exploration_equal base e)))
          [ 1; 2; 4 ]);
    Alcotest.test_case "cap trip is bit-identical at any job count" `Quick
      (fun () ->
        (* The cap can trip mid-wave; wave boundaries are jobs-independent,
           so where it trips (and every counter at that point) must not
           depend on the pool. *)
        let config = F.h_family 2 in
        let base = Checker.explore ~depth:8 ~faults:1 ~states:5_000 config in
        check "cap tripped" true
          (match base.Checker.exhausted with
          | Some `States -> true
          | _ -> false);
        List.iter
          (fun jobs ->
            Pool.with_pool ~jobs (fun pool ->
                let e =
                  Checker.explore ~depth:8 ~faults:1 ~states:5_000 ~pool
                    config
                in
                check
                  (Printf.sprintf "identical cap trip at jobs %d" jobs)
                  true
                  (exploration_equal base e)))
          [ 1; 2; 4 ]);
    Alcotest.test_case "every raw successor canonicalizes exactly once"
      `Quick
      (fun () ->
        (* The hot-path fix: one canonicalization per successor (plus the
           initial state), with the single-probe visited set replacing the
           old canonicalize -> encode -> mem -> add chain. *)
        let e = Checker.explore ~depth:6 ~faults:1 (F.h_family 2) in
        check_int "canonicalizations = raw + 1"
          (e.Checker.stats.Checker.states_raw + 1)
          e.Checker.stats.Checker.canonicalizations;
        check "footprint recorded" true
          (e.Checker.stats.Checker.visited_bytes > 0));
  ]

(* --- Differential oracle --------------------------------------------- *)

let oracle_tests =
  [
    Alcotest.test_case "MC agrees with the classifier (n <= 4, replayed)"
      `Slow
      (fun () ->
        let r = Oracle.run ~max_n:4 ~max_span:2 ~replay:true () in
        check_int "exhaustive universe" 434 r.Oracle.configurations;
        check "feasible configs exist" true (r.Oracle.feasible > 0);
        check "infeasible configs exist" true (r.Oracle.infeasible > 0);
        (match r.Oracle.disagreements with
        | [] -> ()
        | d :: _ ->
            Alcotest.failf "disagreement: %a" Oracle.pp_disagreement d);
        check "consistent" true (Oracle.consistent r));
  ]

let () =
  Alcotest.run "mc"
    [
      ("state", state_tests);
      ("symmetry", symmetry_tests);
      ("verify", verify_tests);
      ("mutants", mutant_tests);
      ("packed", packed_tests);
      ("visited-edges", visited_edge_tests);
      ("explore", explore_tests);
      ("oracle", oracle_tests);
    ]
