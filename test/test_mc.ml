(* The bounded model checker (lib/mc): differential agreement with the
   classifier over the exhaustive small-configuration universe, bit-for-bit
   counterexample replay through the engine, mutant detection, and the
   symmetry-reduction quotient. *)

module C = Radio_config.Config
module F = Radio_config.Families
module G = Radio_graph.Graph
module Cl = Election.Classifier
module Fast = Election.Fast_classifier
module Sym = Election.Symmetry
module Lint = Radio_lint.Invariants
module State = Radio_mc.State
module Machine = Radio_mc.Machine
module Checker = Radio_mc.Checker
module Mutant = Radio_mc.Mutant
module Oracle = Radio_mc.Oracle

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let uniform_cycle n = C.uniform (Radio_graph.Gen.cycle n) 0

(* --- State encoding ------------------------------------------------- *)

let state_tests =
  [
    Alcotest.test_case "interner is a hash-cons" `Quick (fun () ->
        let i = State.Intern.create () in
        let k1 = State.Intern.get i 0 State.E_silence in
        let k2 = State.Intern.get i 0 State.E_silence in
        let k3 = State.Intern.get i k1 (State.E_message "1") in
        let k4 = State.Intern.get i k1 (State.E_message "1") in
        let k5 = State.Intern.get i k1 (State.E_message "2") in
        check_int "same pair same key" k1 k2;
        check_int "same message same key" k3 k4;
        check "distinct message distinct key" true (k4 <> k5);
        check_int "three keys interned" 3 (State.Intern.size i));
    Alcotest.test_case "history materialization" `Quick (fun () ->
        let i = State.Intern.create () in
        let k1 = State.Intern.get i 0 (State.E_message "m") in
        let k2 = State.Intern.get i k1 State.E_collision in
        let k3 = State.Intern.get i k2 State.E_silence in
        let h = State.Intern.history i k3 in
        check_int "depth" 3 (State.Intern.depth i k3);
        check "entries" true
          (Radio_drip.History.equal h
             [|
               Radio_drip.History.Message "m";
               Radio_drip.History.Collision;
               Radio_drip.History.Silence;
             |]));
    Alcotest.test_case "canonicalize picks the orbit minimum" `Quick
      (fun () ->
        let config = uniform_cycle 4 in
        let autos = Sym.automorphisms config in
        check_int "C4 has the dihedral group" 8 (List.length autos);
        let s = [| 3; 1; 1; 1 |] in
        let canon = State.canonicalize autos s in
        check "canonical is minimal" true
          (State.equal canon [| 1; 1; 1; 3 |]);
        (* every permuted variant canonicalizes identically *)
        List.iter
          (fun phi ->
            check "orbit collapses" true
              (State.equal canon
                 (State.canonicalize autos (State.permute phi s))))
          autos);
    Alcotest.test_case "encode separates round classes" `Quick (fun () ->
        let s = [| 1; 0 |] in
        check "same state, different round class" true
          (State.encode ~round_class:0 s <> State.encode ~round_class:1 s);
        check "same round class" true
          (String.equal
             (State.encode ~round_class:2 s)
             (State.encode ~round_class:2 [| 1; 0 |])));
  ]

(* --- Automorphism groups -------------------------------------------- *)

let symmetry_tests =
  [
    Alcotest.test_case "asymmetric config has only the identity" `Quick
      (fun () ->
        let autos = Sym.automorphisms (F.h_family 2) in
        check_int "trivial group" 1 (List.length autos);
        check "identity" true
          (match autos with
          | [ phi ] -> Array.for_all (fun v -> phi.(v) = v) (Array.mapi (fun i _ -> i) phi)
          | _ -> false));
    Alcotest.test_case "s-family path has the reversal" `Quick (fun () ->
        let autos = Sym.automorphisms (F.s_family 2) in
        check_int "id + reversal" 2 (List.length autos));
    Alcotest.test_case "every listed permutation is an automorphism" `Quick
      (fun () ->
        let config = uniform_cycle 5 in
        let g = C.graph config in
        List.iter
          (fun phi ->
            List.iter
              (fun (u, v) ->
                check "edge preserved" true (G.mem_edge g phi.(u) phi.(v)))
              (G.edges g))
          (Sym.automorphisms config));
  ]

(* --- Protocol-mode verification ------------------------------------- *)

let feasible_config = F.h_family 2
let infeasible_config = F.s_family 2

let verify_tests =
  [
    Alcotest.test_case "feasible family elects the canonical leader" `Quick
      (fun () ->
        let res = Checker.verify feasible_config in
        match res.Checker.verdict with
        | Checker.Elected { leader; round } ->
            let expected =
              match Cl.canonical_leader (Fast.classify feasible_config) with
              | Some l -> l
              | None -> Alcotest.fail "family must be feasible"
            in
            check_int "canonical leader" expected leader;
            let n = C.size feasible_config in
            let sigma = C.span feasible_config in
            check "within the O(n^2 sigma) bound" true
              (round <= Checker.global_bound ~n ~sigma)
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
    Alcotest.test_case "infeasible family reaches a symmetric state" `Quick
      (fun () ->
        let res = Checker.verify infeasible_config in
        match res.Checker.verdict with
        | Checker.Non_election { classes } ->
            check "at least one class" true (List.length classes >= 1);
            List.iter
              (fun cls ->
                check "no singleton history class" true
                  (List.length cls >= 2))
              classes
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
    Alcotest.test_case "counterexample trace replays bit-for-bit" `Quick
      (fun () ->
        List.iter
          (fun config ->
            let machine = Machine.drip config in
            let res = Checker.verify ~machine config in
            let rp = Checker.replay ~machine res in
            check "trace equality" true rp.Checker.trace_matches;
            check "model validation" true
              (Radio_lint.Report.ok rp.Checker.report))
          [ feasible_config; infeasible_config; F.g_family 2; F.h_family 1 ]);
    Alcotest.test_case "depth budget trips" `Quick (fun () ->
        let res = Checker.verify ~depth:1 feasible_config in
        check "exhausted" true
          (match res.Checker.verdict with
          | Checker.Exhausted `Depth -> true
          | _ -> false));
    Alcotest.test_case "pure-drip machine agrees with drip" `Quick (fun () ->
        let r1 = Checker.verify ~machine:(Machine.drip feasible_config) feasible_config in
        let r2 =
          Checker.verify
            ~machine:(Machine.pure_drip feasible_config)
            feasible_config
        in
        check "same trace" true
          (Checker.trace_equal r1.Checker.trace r2.Checker.trace));
    Alcotest.test_case "wave machine verifies on its domain" `Quick (fun () ->
        (* a depth-tagged star: node 0 tag 0, leaves woken by the wave *)
        let g = Radio_graph.Gen.star 4 in
        let config = C.create g [| 0; 1; 1; 1 |] in
        check "wave applies" true (Election.Wave_election.applies config);
        let machine =
          match Machine.of_name config "wave" with
          | Some m -> m
          | None -> Alcotest.fail "registry must know wave"
        in
        let res = Checker.check ~machine config in
        match res.Checker.verdict with
        | Checker.Elected { leader; _ } -> check_int "wave leader" 0 leader
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
  ]

(* --- Mutants --------------------------------------------------------- *)

let mutant_tests =
  [
    Alcotest.test_case "greedy decision mutant violates safety" `Quick
      (fun () ->
        let machine = Mutant.greedy_decision feasible_config in
        let res = Checker.check ~machine feasible_config in
        (match res.Checker.verdict with
        | Checker.Violated (Checker.Two_leaders ls) ->
            check "at least two leaders" true (List.length ls >= 2)
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
        (* The action schedule is the canonical DRIP's, so the trace is a
           valid execution: check-trace passes, as the verdict predicts. *)
        let rp = Checker.replay ~machine res in
        check "trace equality" true rp.Checker.trace_matches;
        check "replay passes validation" true
          (Radio_lint.Report.ok rp.Checker.report));
    Alcotest.test_case "early-stop mutant breaks liveness" `Quick (fun () ->
        let machine = Mutant.early_stop feasible_config in
        let res = Checker.verify ~machine feasible_config in
        (match res.Checker.verdict with
        | Checker.Violated Checker.No_leader_on_feasible -> ()
        | v -> Alcotest.failf "unexpected verdict: %a" Checker.pp_verdict v);
        (* Replaying under the mutant itself is bit-for-bit clean... *)
        let rp = Checker.replay ~machine res in
        check "trace equality" true rp.Checker.trace_matches;
        check "self-replay passes" true
          (Radio_lint.Report.ok rp.Checker.report);
        (* ...but the same outcome validated against the healthy canonical
           protocol fails check-trace, exactly as the verdict predicts. *)
        let healthy = (Machine.drip feasible_config).Machine.protocol in
        check "fails against healthy protocol" false
          (Radio_lint.Report.ok
             (Lint.validate ~protocol:healthy rp.Checker.outcome)));
  ]

(* --- Universal mode and the symmetry quotient ------------------------ *)

let explore_tests =
  [
    Alcotest.test_case "fault-free anonymous states are symmetric" `Quick
      (fun () ->
        (* Lockstep classes keep every reachable state automorphism-
           invariant, so the quotient changes nothing — the checker's
           restatement of the paper's symmetry impossibility. *)
        let config = uniform_cycle 4 in
        let on = Checker.explore ~depth:6 ~reduction:true config in
        let off = Checker.explore ~depth:6 ~reduction:false config in
        check "group found" true (on.Checker.stats.Checker.automorphisms > 1);
        check_int "identical visited sets"
          off.Checker.stats.Checker.states_explored
          on.Checker.stats.Checker.states_explored);
    Alcotest.test_case "symmetry reduction shrinks the visited set" `Quick
      (fun () ->
        (* A crash adversary names concrete nodes, breaking lockstep:
           killing automorphic twins yields automorphic sibling states the
           quotient collapses. *)
        let config = uniform_cycle 4 in
        let on = Checker.explore ~depth:6 ~faults:1 ~reduction:true config in
        let off =
          Checker.explore ~depth:6 ~faults:1 ~reduction:false config
        in
        check "group found" true (on.Checker.stats.Checker.automorphisms > 1);
        check "strictly fewer states" true
          (on.Checker.stats.Checker.states_explored
          < off.Checker.stats.Checker.states_explored);
        check "same separation verdict" true
          (match (on.Checker.separated_at, off.Checker.separated_at) with
          | None, None -> true
          | Some a, Some b -> a = b
          | _ -> false);
        check "peak frontier recorded" true
          (on.Checker.stats.Checker.peak_frontier >= 1));
    Alcotest.test_case "uniform cycle never separates" `Quick (fun () ->
        let e = Checker.explore ~depth:8 (uniform_cycle 4) in
        check "no separation" true (Option.is_none e.Checker.separated_at));
    Alcotest.test_case "feasible family separates" `Quick (fun () ->
        let e = Checker.explore ~depth:12 (F.h_family 1) in
        check "separates" true (Option.is_some e.Checker.separated_at));
    Alcotest.test_case "state budget trips" `Quick (fun () ->
        let e = Checker.explore ~depth:20 ~states:1 (uniform_cycle 4) in
        check "exhausted" true
          (match e.Checker.exhausted with
          | Some `States -> true
          | _ -> false));
  ]

(* --- Differential oracle --------------------------------------------- *)

let oracle_tests =
  [
    Alcotest.test_case "MC agrees with the classifier (n <= 4, replayed)"
      `Slow
      (fun () ->
        let r = Oracle.run ~max_n:4 ~max_span:2 ~replay:true () in
        check_int "exhaustive universe" 434 r.Oracle.configurations;
        check "feasible configs exist" true (r.Oracle.feasible > 0);
        check "infeasible configs exist" true (r.Oracle.infeasible > 0);
        (match r.Oracle.disagreements with
        | [] -> ()
        | d :: _ ->
            Alcotest.failf "disagreement: %a" Oracle.pp_disagreement d);
        check "consistent" true (Oracle.consistent r));
  ]

let () =
  Alcotest.run "mc"
    [
      ("state", state_tests);
      ("symmetry", symmetry_tests);
      ("verify", verify_tests);
      ("mutants", mutant_tests);
      ("explore", explore_tests);
      ("oracle", oracle_tests);
    ]
