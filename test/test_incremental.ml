(* Tests for the incremental classifier (lib/core/incremental.ml): the
   differential oracle against Fast_classifier over randomized edit
   sequences, byte-equality of oracle reports at jobs 1/2/4, feasibility
   flips in both directions, and the label-reuse economics. *)

module G = Radio_graph.Graph
module Config = Radio_config.Config
module I = Election.Incremental
module FC = Election.Fast_classifier
module Pool = Radio_exec.Pool

let path_config n tags = Config.create (G.of_edges n (List.init (n - 1) (fun i -> (i, i + 1)))) tags

let check_against_scratch st =
  match (I.current st, I.run st) with
  | None, None -> true
  | Some c, Some r -> I.runs_equal r (FC.classify c)
  | _ -> false

(* --- single edits ------------------------------------------------- *)

let test_add_edge_matches_scratch () =
  (* P4 with tags 0 1 0 1: add a chord, verdicts must track scratch. *)
  let st = I.init (path_config 4 [| 0; 1; 0; 1 |]) in
  let st = I.apply st (I.Add_edge (0, 3)) in
  Alcotest.(check bool) "agrees with scratch" true (check_against_scratch st);
  let st = I.apply st (I.Remove_edge (1, 2)) in
  Alcotest.(check bool) "agrees after removal" true (check_against_scratch st)

let test_set_tag_matches_scratch () =
  let st = I.init (path_config 5 [| 0; 0; 0; 0; 0 |]) in
  let st = I.apply st (I.Set_tag (2, 3)) in
  Alcotest.(check bool) "agrees with scratch" true (check_against_scratch st);
  (* span change: every label recomputed, still bit-identical *)
  let st = I.apply st (I.Set_tag (4, 9)) in
  Alcotest.(check bool) "agrees after span change" true (check_against_scratch st)

let test_feasibility_flips_both_ways () =
  (* Uniform-tag path of even length is infeasible (fully symmetric);
     retagging one endpoint breaks the symmetry, and restoring the tag
     restores infeasibility.  The incremental run must flip with it —
     the refinement restart is what makes the merge direction sound. *)
  let st = I.init (path_config 4 [| 0; 0; 0; 0 |]) in
  Alcotest.(check bool) "symmetric start infeasible" false (I.feasible st);
  let st = I.apply st (I.Set_tag (0, 1)) in
  Alcotest.(check bool) "tag break feasible" true (I.feasible st);
  Alcotest.(check bool) "matches scratch (to feasible)" true
    (check_against_scratch st);
  let st = I.apply st (I.Set_tag (0, 0)) in
  Alcotest.(check bool) "symmetry restored infeasible" false (I.feasible st);
  Alcotest.(check bool) "matches scratch (to infeasible)" true
    (check_against_scratch st)

let test_edge_flip_both_ways () =
  (* C4 with alternating tags is infeasible; removing one edge makes a
     tagged path that is feasible; adding it back must merge the split
     classes again. *)
  let g = G.of_edges 4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let st = I.init (Config.create g [| 0; 1; 0; 1 |]) in
  let before = I.feasible st in
  let st' = I.apply st (I.Remove_edge (3, 0)) in
  Alcotest.(check bool) "removal matches scratch" true
    (check_against_scratch st');
  let st'' = I.apply st' (I.Add_edge (3, 0)) in
  Alcotest.(check bool) "re-adding matches scratch" true
    (check_against_scratch st'');
  Alcotest.(check bool) "verdict restored" before (I.feasible st'');
  Alcotest.(check bool) "removal changed verdict" true
    (I.feasible st' <> before)

let test_leave_join_roundtrip () =
  let st = I.init (path_config 5 [| 0; 2; 1; 0; 3 |]) in
  let st = I.apply st (I.Leave 2) in
  Alcotest.(check int) "live count" 4 (I.live st);
  Alcotest.(check bool) "agrees after leave" true (check_against_scratch st);
  Alcotest.(check bool) "leave is a rebuild" true (I.last st).I.rebuilt;
  let st = I.apply st (I.Join (2, 7)) in
  Alcotest.(check int) "live count restored" 5 (I.live st);
  Alcotest.(check bool) "agrees after join" true (check_against_scratch st)

let test_absent_node_edits_are_noops () =
  let st = I.init (path_config 4 [| 0; 1; 2; 3 |]) in
  let st = I.apply st (I.Leave 3) in
  let r_before = I.run st in
  let st = I.apply st (I.Set_tag (3, 9)) in
  let st = I.apply st (I.Remove_edge (2, 3)) in
  Alcotest.(check bool) "induced run untouched" true
    (match (r_before, I.run st) with
    | Some a, Some b -> I.runs_equal a b
    | _ -> false);
  Alcotest.(check int) "no labels computed" 0 (I.last st).I.labels_computed;
  (* the edits still took effect on the universe: rejoining sees them *)
  let st = I.apply st (I.Join (3, 9)) in
  Alcotest.(check bool) "agrees after rejoin" true (check_against_scratch st)

let test_invalid_edits_rejected () =
  let st = I.init (path_config 4 [| 0; 1; 0; 1 |]) in
  let rejects e =
    match I.apply st e with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "existing edge" true (rejects (I.Add_edge (0, 1)));
  Alcotest.(check bool) "self loop" true (rejects (I.Add_edge (2, 2)));
  Alcotest.(check bool) "missing edge" true (rejects (I.Remove_edge (0, 2)));
  Alcotest.(check bool) "negative tag" true (rejects (I.Set_tag (1, -1)));
  Alcotest.(check bool) "out of range" true (rejects (I.Leave 9));
  Alcotest.(check bool) "join present" true (rejects (I.Join (1, 0)))

(* --- label reuse -------------------------------------------------- *)

let test_single_edit_reuses_labels () =
  (* A local edit on a 64-node path must reuse far more labels than it
     recomputes: this is the deterministic counter behind the speedup
     column in BENCH_churn.json. *)
  let n = 64 in
  let tags = Array.init n (fun i -> i * 31 mod 17) in
  let st = I.init (path_config n tags) in
  (* span-preserving retag: the span σ appears in every label slot, so a
     span-changing edit legitimately recomputes everything *)
  let st = I.apply st (I.Set_tag (n / 2, 3)) in
  let d = I.last st in
  Alcotest.(check bool) "not a rebuild" false d.I.rebuilt;
  Alcotest.(check bool) "reuses majority of labels" true
    (d.I.labels_reused > 4 * d.I.labels_computed);
  Alcotest.(check bool) "still agrees with scratch" true
    (check_against_scratch st)

let test_leader_in_universe_ids () =
  let st = I.init (path_config 4 [| 2; 0; 0; 3 |]) in
  let scratch = FC.classify (path_config 4 [| 2; 0; 0; 3 |]) in
  let expected = Election.Classifier.canonical_leader scratch in
  Alcotest.(check (option int)) "leader matches scratch" expected (I.leader st);
  (* after node 0 leaves, leaders are reported as universe ids *)
  let st = I.apply st (I.Leave 0) in
  match I.leader st with
  | None -> ()
  | Some l ->
      Alcotest.(check bool) "leader is a present universe node" true
        (I.present st l)

(* --- the differential oracle -------------------------------------- *)

let report_to_string r = Format.asprintf "%a" I.Oracle.pp r

let test_oracle_10k_edits () =
  (* >= 10k randomized edits across the four start families. *)
  let r = I.Oracle.run ~sequences:64 ~edits_per_sequence:160 ~seed:0x1CE () in
  Alcotest.(check int) "edits run" (64 * 160) r.I.Oracle.edits;
  Alcotest.(check bool) "at least 10k edits" true (r.I.Oracle.edits >= 10_000);
  Alcotest.(check int) "no mismatches" 0 (List.length r.I.Oracle.mismatches);
  Alcotest.(check bool) "flips to feasible exercised" true
    (r.I.Oracle.flips_to_feasible > 0);
  Alcotest.(check bool) "flips to infeasible exercised" true
    (r.I.Oracle.flips_to_infeasible > 0);
  Alcotest.(check bool) "labels reused" true (r.I.Oracle.reused > 0)

let test_oracle_jobs_byte_equal () =
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        I.Oracle.run ~pool ~sequences:24 ~edits_per_sequence:40 ~seed:42 ())
  in
  let r1 = report_to_string (run 1) in
  let r2 = report_to_string (run 2) in
  let r4 = report_to_string (run 4) in
  Alcotest.(check string) "jobs 1 = jobs 2" r1 r2;
  Alcotest.(check string) "jobs 1 = jobs 4" r1 r4

let test_oracle_deterministic () =
  let r1 = report_to_string (I.Oracle.run ~sequences:8 ~edits_per_sequence:30 ~seed:7 ()) in
  let r2 = report_to_string (I.Oracle.run ~sequences:8 ~edits_per_sequence:30 ~seed:7 ()) in
  Alcotest.(check string) "same seed, same report" r1 r2

let () =
  Alcotest.run "incremental"
    [
      ( "edits",
        [
          Alcotest.test_case "add/remove edge matches scratch" `Quick
            test_add_edge_matches_scratch;
          Alcotest.test_case "set-tag matches scratch" `Quick
            test_set_tag_matches_scratch;
          Alcotest.test_case "feasibility flips both ways (tags)" `Quick
            test_feasibility_flips_both_ways;
          Alcotest.test_case "feasibility flips both ways (edges)" `Quick
            test_edge_flip_both_ways;
          Alcotest.test_case "leave/join roundtrip" `Quick
            test_leave_join_roundtrip;
          Alcotest.test_case "absent-node edits are no-ops" `Quick
            test_absent_node_edits_are_noops;
          Alcotest.test_case "invalid edits rejected" `Quick
            test_invalid_edits_rejected;
        ] );
      ( "economics",
        [
          Alcotest.test_case "single edit reuses labels at n=64" `Quick
            test_single_edit_reuses_labels;
          Alcotest.test_case "leader reported in universe ids" `Quick
            test_leader_in_universe_ids;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "10k+ randomized edits vs fast_classifier" `Slow
            test_oracle_10k_edits;
          Alcotest.test_case "byte-equal reports at jobs 1/2/4" `Quick
            test_oracle_jobs_byte_equal;
          Alcotest.test_case "report deterministic" `Quick
            test_oracle_deterministic;
        ] );
    ]
